"""The asyncio containment service behind ``repro serve``.

A long-lived front door for the containment engine: NDJSON request
frames arrive over TCP connections (or stdin in ``--pipe`` mode), pass
admission control (:mod:`repro.serve.admission`), run on a persistent
:class:`repro.core.batch.ContainmentExecutor` worker pool with
per-request :class:`repro.budget.Budget` deadlines, and come back as
NDJSON response frames **in input order per connection**.

The serving contract (DESIGN.md "Serving architecture"):

- **Every accepted frame is answered.**  Malformed frames become error
  responses; overload and deadlines shed with degraded responses
  carrying ``details["admission"]``; a connection is never reset with
  work outstanding.
- **Deadlines are two-stage.**  A request's effective deadline (its
  own ``deadline_ms``, tightened against the server default) bounds
  *both* stages independently: the request must start within it (else
  admission sheds it at dequeue) and, once started, the same deadline
  is inherited into the check's Budget, which the engine enforces
  cooperatively.  End-to-end latency is therefore bounded by roughly
  twice the deadline.
- **Graceful drain.**  SIGTERM/SIGINT stops the listener, sheds every
  frame that arrives afterwards (reason ``draining``), finishes work
  already admitted (bounded by the per-request budgets), flushes all
  responses, and exits 0.  Connections still open when the drain grace
  period expires are closed after a final flush.

Backend: ``--backend`` selects the pool substrate.  The default
``thread`` backend shares the process-wide result/NFA caches, so a hot
pair answered for one client is a cache hit for every other; the
``process`` backend trades per-request cache sharing for true
multi-core parallelism and crash isolation — workers warm-start
(caches pre-seeded at spin-up), a worker crash resolves to an isolated
``ERROR`` response while the pool rebuilds underneath the running
server, per-request deadline sheds use the picklable
:class:`~repro.serve.admission.DeadlineShedSpec`, and worker-side
metrics/cache deltas are repatriated so the ``metrics`` verb and
``repro top`` report true figures.  The health verb names the active
backend; drain semantics are identical (shutdown waits on process
workers).  See DESIGN.md for the tradeoff.

Telemetry (DESIGN.md "Operational telemetry"): every served frame —
answered, shed, or malformed — carries a ``request_id`` (client-supplied
or server-assigned) and produces one access record routed through
:class:`repro.obs.telemetry.Telemetry` to the optional NDJSON access
log, the flight recorder behind the ``debug`` verb (dumped to
``--flight-dump`` on drain), and — for the ``--trace-sample-rate``
sampled fraction — the hotspot profile the ``metrics`` verb exposes.
``--prom-port`` adds a minimal HTTP endpoint serving the Prometheus
text exposition of the metrics registry.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import io
import os
import signal
import stat
import sys
import time
from typing import Any

from ..budget import Budget
from ..cache import cache_stats
from ..core.batch import DEFAULT_WORKERS, BatchItem, ContainmentExecutor
from ..obs.env import environment_fingerprint
from ..obs.metrics import counter as _metric_counter, gauge as _metric_gauge, \
    histogram as _metric_histogram, metrics_snapshot
from ..obs.promtext import http_exposition
from ..obs.telemetry import Telemetry, TelemetryConfig, access_record
from . import protocol
from .admission import (
    AdmissionController,
    AdmissionPolicy,
    DeadlineShedSpec,
    shed_result,
)

__all__ = ["ServeConfig", "ContainmentServer"]

_REQUESTS = _metric_counter("serve.requests")
_RESPONSES = _metric_counter("serve.responses")
_CONNECTIONS = _metric_counter("serve.connections")
_PROTOCOL_ERRORS = _metric_counter("serve.protocol_errors")
_SHED = _metric_counter("serve.shed")
_SHED_BY = {
    reason: _metric_counter(f"serve.shed.{reason}")
    for reason in ("queue_full", "deadline", "draining")
}
_QUEUE_DEPTH = _metric_gauge("serve.queue_depth")
_LATENCY_MS = _metric_histogram("serve.latency_ms")
_QUEUED_MS = _metric_histogram("serve.queued_ms")
_UTILIZATION = _metric_gauge("serve.worker_utilization")


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Operator configuration for one server process.

    Attributes:
        host / port: TCP listen address (port 0 picks a free port,
            announced on stderr).
        workers: worker-pool width.
        backend: pool substrate, ``"thread"`` (default; shared caches)
            or ``"process"`` (multi-core, crash-isolated; see module
            docstring).
        queue_limit: admission capacity — max requests admitted but not
            yet finished; the ``queue_full`` shed threshold.
        deadline_ms: default per-request wall-clock deadline (frames
            may only tighten it).  None = no default deadline.
        auto_budget: run checks under staged escalation
            (``Budget.auto``) instead of a plain deadline budget.
        drain_grace_ms: after drain starts, how long connections may
            keep sending frames (each shed immediately) before the
            server stops reading and closes them.
        kernel / max_expansions: default engine options (frames may
            override per request).
        access_log: NDJSON access-log path (None = no access log);
            one record per served frame, written off the event loop.
        slow_ms: flight-recorder slow threshold — requests at or above
            it retain their span trees for the ``debug`` verb.
        trace_sample_rate: fraction of containment requests traced
            live ([0, 1]; 0 = tracing off), feeding the hotspot
            profile the ``metrics`` verb exposes.
        flight_recorder_size: ring-buffer capacity of the flight
            recorder.
        flight_dump: file path the flight recorder dumps to on
            drain/SIGTERM (None = no dump).
        prom_port: TCP port answering every HTTP request with the
            Prometheus text exposition (None = no endpoint; 0 picks a
            free port, announced on stderr).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = DEFAULT_WORKERS
    backend: str = "thread"
    queue_limit: int = 64
    deadline_ms: float | None = None
    auto_budget: bool = False
    drain_grace_ms: float = 5000.0
    kernel: str | None = None
    max_expansions: int | None = None
    access_log: str | None = None
    slow_ms: float = 250.0
    trace_sample_rate: float = 0.0
    flight_recorder_size: int = 256
    flight_dump: str | None = None
    prom_port: int | None = None


def _pipe_watchable(stream: Any) -> bool:
    """Whether the event loop can watch *stream* (pipe/socket/tty).

    Selector loops cannot register regular files (or file-less buffers
    like BytesIO) — those take the thread-reader path instead.
    """
    try:
        mode = os.fstat(stream.fileno()).st_mode
    except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
        return False
    return stat.S_ISFIFO(mode) or stat.S_ISSOCK(mode) or stat.S_ISCHR(mode)


class _ThreadLineReader:
    """Readline adapter for pipe-mode stdin that epoll cannot watch.

    ``connect_read_pipe`` fails when stdin is a regular file (selector
    event loops cannot register them); regular files never block
    indefinitely, so reading them on the default thread executor is
    safe — a pipe or tty keeps the cancellable StreamReader path.
    """

    def __init__(self, stream: Any) -> None:
        self._stream = stream

    async def readline(self) -> bytes:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self._stream.readline)


class _PipeWriter:
    """The StreamWriter-shaped adapter for ``--pipe`` mode stdout."""

    def __init__(self, stream: Any = None) -> None:
        self._stream = stream if stream is not None else sys.stdout.buffer

    def write(self, data: bytes) -> None:
        self._stream.write(data)

    async def drain(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        with contextlib.suppress(ValueError):
            self._stream.flush()

    async def wait_closed(self) -> None:
        return None


class ContainmentServer:
    """One serving process; see the module docstring for the contract."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        options: dict[str, Any] = {}
        if config.kernel is not None:
            options["kernel"] = config.kernel
        if config.max_expansions is not None:
            options["max_expansions"] = config.max_expansions
        # Constructing the executor validates workers/backend/options
        # eagerly — a bad server config fails at startup, never per
        # request.
        self._executor = ContainmentExecutor(
            workers=config.workers, backend=config.backend, **options
        )
        self._admission = AdmissionController(
            AdmissionPolicy(
                capacity=config.queue_limit,
                default_deadline_ms=config.deadline_ms,
            )
        )
        if config.auto_budget:
            self._base_budget: Budget | None = Budget.auto(
                deadline_ms=config.deadline_ms
            ) if config.deadline_ms is not None else Budget.auto()
        elif config.deadline_ms is not None:
            self._base_budget = Budget(deadline_ms=config.deadline_ms)
        else:
            self._base_budget = None
        self._draining = asyncio.Event()
        self._drain_deadline: float | None = None
        self._started = time.monotonic()
        self._busy_ms = 0.0
        self._server: asyncio.AbstractServer | None = None
        self._prom_server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[asyncio.Task] = set()
        self._frames_answered = 0
        self._telemetry = Telemetry(
            TelemetryConfig(
                access_log=config.access_log,
                slow_ms=config.slow_ms,
                sample_rate=config.trace_sample_rate,
                flight_capacity=config.flight_recorder_size,
            )
        )
        # Cached at startup: the fingerprint shells out to git once,
        # which must never happen per health probe.
        self._environment = environment_fingerprint()
        self._request_seq = 0
        self._rid_prefix = f"r{os.getpid():x}"

    # ----------------------------------------------------------------- drain

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def initiate_drain(self) -> None:
        """Begin graceful drain (idempotent; the SIGTERM/SIGINT handler).

        Stops the listener so no new connection is accepted; frames on
        existing connections are shed from now on; the grace clock for
        closing lingering connections starts ticking.
        """
        if self._draining.is_set():
            return
        self._drain_deadline = (
            time.monotonic() + self.config.drain_grace_ms / 1000.0
        )
        self._draining.set()
        if self._server is not None:
            self._server.close()

    def _grace_remaining(self) -> float:
        if self._drain_deadline is None:
            return self.config.drain_grace_ms / 1000.0
        return max(0.0, self._drain_deadline - time.monotonic())

    # ------------------------------------------------------------- dispatch

    def _request_kernel(self, options: dict[str, Any] | None = None) -> str:
        merged = options or {}
        return merged.get("kernel", self.config.kernel or "auto")

    def _next_request_id(self, supplied: str | None = None) -> str:
        """Propagate the client's request_id or assign a fresh one.

        Server-assigned ids are ``r<pid>-<seq>``: unique within the
        process, and the pid prefix keeps them unique across the
        restarts an access log typically spans.
        """
        if supplied is not None:
            return supplied
        self._request_seq += 1
        return f"{self._rid_prefix}-{self._request_seq:06d}"

    def _shed_payload(
        self,
        frame_index: int,
        identifier: Any,
        reason: str,
        *,
        request_id: str,
        waited_ms: float = 0.0,
        deadline_ms: float | None = None,
        kernel: str = "auto",
    ) -> dict[str, Any]:
        """Build (and count, and log) one shed response payload."""
        _SHED.inc()
        _SHED_BY[reason].inc()
        result = shed_result(
            reason,
            queue_depth=self._admission.pending,
            queue_limit=self.config.queue_limit,
            waited_ms=waited_ms,
            deadline_ms=deadline_ms,
            kernel=kernel,
        )
        item = BatchItem(frame_index, result, 0.0, None, request_id)
        self._telemetry.observe(
            access_record(
                request_id=request_id,
                op="contain",
                index=frame_index,
                client_id=identifier,
                item=item,
                shed=reason,
                queued_ms=waited_ms,
                total_ms=waited_ms,
            )
        )
        return protocol.response_payload(identifier, item, index=frame_index)

    def _dispatch(self, line: str, index: int) -> Any:
        """Turn one input frame into a payload dict, coroutine, or task.

        Synchronous outcomes (protocol errors, control verbs, admission
        sheds) return the payload immediately; admitted containment
        requests return the :meth:`_finish` *task* resolving to the
        payload once the worker pool answers — a task, not a bare
        coroutine, so the admission slot is released (and latency
        observed) the moment the check completes, independent of when
        the in-order writer gets to it or whether the peer is still
        reading.  Either way the frame is *answered* — this function
        never raises.
        """
        _REQUESTS.inc()
        try:
            # allow_files stays False: '@' file specs are CLI/workload
            # conveniences, never readable by a remote peer.
            frame = protocol.parse_frame(line, index, allow_files=False)
        except Exception as exc:
            _PROTOCOL_ERRORS.inc()
            _RESPONSES.inc()
            # id is null for unparseable frames, as in `repro batch`;
            # the request_id is server-assigned — nothing in a frame
            # that failed to parse is trusted, its own request_id
            # included.
            request_id = self._next_request_id()
            item = protocol.error_item(index, exc, request_id)
            self._telemetry.observe(
                access_record(
                    request_id=request_id, op="invalid", index=index, item=item
                )
            )
            return protocol.response_payload(None, item, index=index)
        request_id = self._next_request_id(frame.request_id)
        if isinstance(frame, protocol.ControlRequest):
            control_frame = frame

            async def control() -> dict[str, Any]:
                # Built when its turn in the response queue comes, so a
                # health/metrics frame sent after a batch of requests
                # observes the state *after* those responses — in-order
                # writing makes control verbs read-your-writes barriers.
                _RESPONSES.inc()
                started = time.monotonic()
                payload = self._control_payload(control_frame, request_id)
                exec_ms = (time.monotonic() - started) * 1000.0
                self._telemetry.observe(
                    access_record(
                        request_id=request_id,
                        op=control_frame.verb,
                        index=control_frame.index,
                        client_id=control_frame.id,
                        exec_ms=exec_ms,
                        total_ms=exec_ms,
                    )
                )
                return payload

            return control()
        kernel = self._request_kernel(dict(frame.options))
        reason = self._admission.try_admit(draining=self.draining)
        if reason is not None:
            _RESPONSES.inc()
            _QUEUE_DEPTH.set(self._admission.pending)
            return self._shed_payload(
                frame.index,
                frame.id,
                reason,
                request_id=request_id,
                deadline_ms=self._admission.effective_deadline_ms(
                    frame.deadline_ms
                ),
                kernel=kernel,
            )
        _QUEUE_DEPTH.set(self._admission.pending)
        admitted_at = time.monotonic()
        deadline_ms = self._admission.effective_deadline_ms(frame.deadline_ms)
        start_deadline = (
            admitted_at + deadline_ms / 1000.0 if deadline_ms is not None else None
        )
        budget: Budget | None = self._base_budget
        if frame.deadline_ms is not None:
            budget = (budget or Budget()).tightened(frame.deadline_ms)
        # Snapshot the queue depth on the event loop now: the spec
        # fires in a worker (a thread here, a separate *process* on
        # backend="process"), and the controller's state is
        # event-loop-only by contract.  The frozen dataclass pickles,
        # so deadline sheds are backend-agnostic; it only builds the
        # result object — metrics are counted back on the event loop
        # in _finish.
        expired = DeadlineShedSpec(
            queue_depth=self._admission.pending,
            queue_limit=self.config.queue_limit,
            deadline_ms=deadline_ms,
            kernel=kernel,
        )

        sampled = self._telemetry.sample()
        future = self._executor.submit(
            frame.left,
            frame.right,
            index=frame.index,
            budget=budget,
            trace=sampled,
            start_deadline=start_deadline,
            expired_result=expired,
            request_id=request_id,
            options=dict(frame.options) or None,
        )
        return asyncio.ensure_future(
            self._finish(frame, future, admitted_at, sampled=sampled)
        )

    async def _finish(
        self,
        frame: protocol.ContainRequest,
        future: Any,
        admitted_at: float,
        *,
        sampled: bool = False,
    ) -> dict[str, Any]:
        """Await one admitted request's worker future; account for it.

        Runs as its own task from the moment of dispatch (not when the
        in-order writer reaches it), so the admission slot is always
        released at completion — even if the peer disconnects and the
        writer dies with responses still queued.
        """
        try:
            item: BatchItem = await asyncio.wrap_future(future)
        finally:
            self._admission.release()
            _QUEUE_DEPTH.set(self._admission.pending)
        latency_ms = (time.monotonic() - admitted_at) * 1000.0
        _LATENCY_MS.observe(latency_ms)
        _QUEUED_MS.observe(max(0.0, latency_ms - item.wall_ms))
        _RESPONSES.inc()
        self._frames_answered += 1
        shed: str | None = None
        if item.result.method == "serve-admission":
            # A dequeue-deadline shed: counted here, on the event loop,
            # both on the serve.* instruments and on the controller so
            # health/drain totals agree with the metrics registry.
            self._admission.record_shed()
            _SHED.inc()
            _SHED_BY["deadline"].inc()
            shed = "deadline"
        self._busy_ms += item.wall_ms
        uptime_ms = (time.monotonic() - self._started) * 1000.0
        if uptime_ms > 0:
            _UTILIZATION.set(
                round(
                    min(1.0, self._busy_ms / (self.config.workers * uptime_ms)), 4
                )
            )
        trace = item.result.details.get("trace") if sampled else None
        self._telemetry.observe(
            access_record(
                request_id=item.request_id or "unassigned",
                op="contain",
                index=frame.index,
                client_id=frame.id,
                item=item,
                shed=shed,
                queued_ms=max(0.0, latency_ms - item.wall_ms),
                exec_ms=item.wall_ms,
                total_ms=latency_ms,
                sampled=sampled,
            ),
            trace if isinstance(trace, dict) else None,
        )
        return protocol.response_payload(frame.id, item, index=frame.index)

    def _control_payload(
        self, frame: protocol.ControlRequest, request_id: str
    ) -> dict[str, Any]:
        uptime_ms = round((time.monotonic() - self._started) * 1000.0, 3)
        if frame.verb == "health":
            return {
                "op": "health",
                "id": frame.id,
                "index": frame.index,
                "request_id": request_id,
                "status": "draining" if self.draining else "ok",
                "schema": protocol.SERVE_SCHEMA,
                "queue_depth": self._admission.pending,
                "queue_limit": self.config.queue_limit,
                "workers": self.config.workers,
                "backend": self.config.backend,
                "shed_total": self._admission.shed_total,
                "admitted_total": self._admission.admitted_total,
                "uptime_ms": uptime_ms,
                "environment": self._environment,
            }
        if frame.verb == "debug":
            return {
                "op": "debug",
                "id": frame.id,
                "index": frame.index,
                "request_id": request_id,
                "uptime_ms": uptime_ms,
                "flight": self._telemetry.recorder.dump(frame.last),
            }
        return {
            "op": "metrics",
            "id": frame.id,
            "index": frame.index,
            "request_id": request_id,
            "uptime_ms": uptime_ms,
            "backend": self.config.backend,
            "metrics": metrics_snapshot(),
            "cache": cache_stats(),
            "telemetry": self._telemetry.stats(),
            "profile": self._telemetry.profile_snapshot(),
        }

    # ---------------------------------------------------------- connections

    async def _read_frame(self, reader: asyncio.StreamReader) -> bytes | None:
        """One line from the peer; None means stop (EOF or grace over).

        Before drain, wake on *either* a line or the drain event so an
        idle connection starts its grace clock the moment drain begins;
        after drain, reads are bounded by the remaining grace.
        """
        if not self.draining:
            read_task = asyncio.ensure_future(reader.readline())
            drain_task = asyncio.ensure_future(self._draining.wait())
            try:
                done, _ = await asyncio.wait(
                    {read_task, drain_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                drain_task.cancel()
            if read_task in done:
                return read_task.result()
            # Drain began while blocked: fall through to a bounded read.
            try:
                return await asyncio.wait_for(read_task, self._grace_remaining())
            except asyncio.TimeoutError:
                return None
        remaining = self._grace_remaining()
        if remaining <= 0:
            return None
        try:
            return await asyncio.wait_for(reader.readline(), remaining)
        except asyncio.TimeoutError:
            return None

    async def _write_responses(
        self, queue: "asyncio.Queue[Any]", writer: Any
    ) -> None:
        """Flush response payloads in input order (one writer per peer).

        Entries are payload dicts (synchronous outcomes), control-verb
        coroutines (evaluated here so they observe the state after every
        prior response), or :meth:`_finish` tasks (already running; the
        await only collects the payload — completion accounting does not
        wait for this writer).
        """
        while True:
            entry = await queue.get()
            if entry is None:
                return
            try:
                payload = (
                    await entry
                    if asyncio.iscoroutine(entry) or asyncio.isfuture(entry)
                    else entry
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # A response coroutine failing is a server bug, but the
                # frame still gets an answer rather than a silent gap.
                payload = protocol.response_payload(
                    None, protocol.error_item(-1, exc)
                )
            writer.write(protocol.encode_frame(payload).encode("utf-8"))
            await writer.drain()

    async def _handle_stream(
        self, reader: asyncio.StreamReader, writer: Any
    ) -> None:
        """One connection: read frames, answer each, in input order."""
        _CONNECTIONS.inc()
        responses: asyncio.Queue[Any] = asyncio.Queue()
        writer_task = asyncio.ensure_future(
            self._write_responses(responses, writer)
        )
        index = 0
        try:
            while True:
                line = await self._read_frame(reader)
                if not line:  # EOF, or drain grace expired
                    break
                text = line.decode("utf-8", errors="replace")
                if not text.strip():
                    continue
                await responses.put(self._dispatch(text, index))
                index += 1
        except OSError:
            # The peer vanished (connection reset/aborted mid-read).  A
            # dead transport is a normal way for a connection to end,
            # not a server error to propagate — the finally still runs
            # every accepted frame's accounting.
            pass
        finally:
            # Always flush what was accepted, even on a reader error:
            # the sentinel lands after every queued response.
            await responses.put(None)
            with contextlib.suppress(Exception):
                await writer_task
            # If the writer died early (peer disconnected mid-write),
            # entries are still queued.  Await each leftover so every
            # _finish task completes its accounting (slot release,
            # metrics) and no control coroutine is left un-awaited —
            # the payloads themselves have nowhere to go and are
            # discarded.
            while True:
                try:
                    entry = responses.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if asyncio.iscoroutine(entry) or asyncio.isfuture(entry):
                    with contextlib.suppress(Exception):
                        await entry
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Synchronous accept callback: the handler task is registered
        # *before* control returns to the loop, so a drain beginning in
        # the same tick still waits for this connection.
        task = asyncio.ensure_future(self._handle_stream(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------ telemetry

    async def _serve_prom(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one Prometheus scrape: any HTTP request, one exposition.

        Minimal by design — read whatever request line arrives (bounded,
        ignored), write the full HTTP/1.0 response, close.  A scraper
        needs nothing more, and the endpoint shares the process's
        metrics registry with the ``metrics`` verb.
        """
        try:
            with contextlib.suppress(Exception):
                await asyncio.wait_for(reader.readline(), 5.0)
            writer.write(http_exposition())
            await writer.drain()
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _finalize_telemetry(self) -> None:
        """Drain-time telemetry teardown: flight dump, then log flush."""
        if self.config.flight_dump is not None:
            with contextlib.suppress(OSError):
                path = self._telemetry.recorder.dump_to_file(
                    self.config.flight_dump
                )
                print(f"# flight recorder dumped to {path}",
                      file=sys.stderr, flush=True)
        self._telemetry.close()

    # --------------------------------------------------------------- modes

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, self.initiate_drain)

    async def _shutdown(self) -> None:
        """Wait for open connections (bounded by grace), stop the pool."""
        if self._connections:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*self._connections, return_exceptions=True),
                    self._grace_remaining() + 1.0,
                )
        for task in list(self._connections):
            task.cancel()
        self._executor.shutdown(wait=True, cancel_futures=True)

    async def serve_tcp(self) -> None:
        """Listen on the configured address until drained."""
        self._loop = asyncio.get_running_loop()
        self._install_signal_handlers()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        if self.config.prom_port is not None:
            self._prom_server = await asyncio.start_server(
                self._serve_prom, self.config.host, self.config.prom_port
            )
            prom_port = self._prom_server.sockets[0].getsockname()[1]
            print(
                f"# metrics on http://{self.config.host}:{prom_port}/metrics",
                file=sys.stderr,
                flush=True,
            )
        port = self._server.sockets[0].getsockname()[1]
        print(
            f"# serving on {self.config.host}:{port} "
            f"({self.config.workers} {self.config.backend} workers, "
            f"queue limit {self.config.queue_limit})",
            file=sys.stderr,
            flush=True,
        )
        if self.draining:  # drained before the listener was up
            self._server.close()
        try:
            await self._draining.wait()
        finally:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            if self._prom_server is not None:
                self._prom_server.close()
                with contextlib.suppress(Exception):
                    await self._prom_server.wait_closed()
            await self._shutdown()
            self._finalize_telemetry()
            print(
                f"# drained: {self._frames_answered} containment frames "
                f"answered, {self._admission.shed_total} shed",
                file=sys.stderr,
                flush=True,
            )

    async def serve_pipe(self, stdin: Any = None, stdout: Any = None) -> None:
        """One-shot pipe mode: stdin frames in, stdout frames out."""
        self._loop = asyncio.get_running_loop()
        self._install_signal_handlers()
        loop = self._loop
        stream = stdin if stdin is not None else sys.stdin
        reader: Any
        if _pipe_watchable(stream):
            reader = asyncio.StreamReader()
            await loop.connect_read_pipe(
                lambda: asyncio.StreamReaderProtocol(reader), stream
            )
        else:
            reader = _ThreadLineReader(getattr(stream, "buffer", stream))
        writer = _PipeWriter(stdout)
        try:
            await self._handle_stream(reader, writer)
        finally:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._finalize_telemetry()
