"""Admission control and load shedding for the serving layer.

The service's overload contract (DESIGN.md "Serving architecture"): a
request that cannot be served within its constraints is *shed* — it
receives a degraded ``INCONCLUSIVE`` response carrying
``details["admission"]`` with spend accounting — and is never answered
with a dropped connection or an unbounded queue wait.  Three shed
reasons:

- ``queue_full`` — admitting the request would push the number of
  admitted-but-unfinished requests past the configured capacity.
  Shedding at the door keeps queue wait (and therefore tail latency)
  bounded: a bounded queue in front of a fixed pool is the whole
  admission policy.
- ``deadline`` — the request was admitted but no worker picked it up
  before its wall-clock deadline expired (the batch layer's
  ``start_deadline`` hook fires).  Running it anyway could only return
  after the caller stopped caring.
- ``draining`` — the frame arrived after the server began graceful
  drain (SIGTERM/SIGINT).  It is still *answered* — drain sheds, it
  never drops.

The controller itself is deliberately small: an admitted-but-unfinished
counter against a capacity, mutated only from the event-loop thread
(admit on dispatch, release when the response future resolves, deadline
sheds recorded via :meth:`AdmissionController.record_shed` at the same
point), so it needs no lock.  The shed verdicts reuse the engine's honest-accounting
shape — ``details["budget"]`` records ``admission:<reason>`` as the
exhausted resource alongside the admission block — so downstream
tooling that reads batch results reads shed responses unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..report import ContainmentResult, Verdict

__all__ = [
    "SHED_REASONS",
    "AdmissionController",
    "AdmissionPolicy",
    "DeadlineShedSpec",
    "shed_result",
]

#: Every reason a request can be shed for.
SHED_REASONS = ("queue_full", "deadline", "draining")


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Operator-chosen limits for the admission controller.

    Attributes:
        capacity: maximum requests admitted but not yet finished
            (running + queued).  With ``workers`` pool threads, at most
            ``capacity - workers`` requests ever wait in the queue.
        default_deadline_ms: per-request wall-clock deadline applied
            when a frame names none (None = requests without a
            deadline wait and run unbounded).
    """

    capacity: int = 64
    default_deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, not {self.capacity}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0")


class AdmissionController:
    """Bounded-queue admission: admit, count, shed; see module docstring.

    Single-threaded by contract: every mutation happens on the event
    loop (the worker pool never touches it), so reads are always
    consistent without a lock.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self.pending = 0
        self.admitted_total = 0
        self.shed_total = 0

    def try_admit(self, *, draining: bool = False) -> str | None:
        """Admit the request (returns None) or name the shed reason.

        On admission the pending count is taken immediately — the
        caller owns a slot until it calls :meth:`release`.
        """
        if draining:
            self.shed_total += 1
            return "draining"
        if self.pending >= self.policy.capacity:
            self.shed_total += 1
            return "queue_full"
        self.pending += 1
        self.admitted_total += 1
        return None

    def release(self) -> None:
        """Give back one admitted slot (response future resolved)."""
        if self.pending <= 0:
            raise RuntimeError("release() without a matching admission")
        self.pending -= 1

    def record_shed(self) -> None:
        """Count a shed decided outside :meth:`try_admit`.

        Dequeue-deadline sheds are detected on a worker thread but
        *recorded* here, from the event loop when the response future
        resolves — keeping every mutation single-threaded and the
        ``shed_total`` surfaced by the health verb consistent with the
        ``serve.shed`` metrics.
        """
        self.shed_total += 1

    def effective_deadline_ms(self, requested: float | None) -> float | None:
        """The deadline a request runs under: its own, or the default.

        A request deadline only *tightens* the policy default, matching
        :meth:`repro.budget.Budget.tightened`.
        """
        if requested is None:
            return self.policy.default_deadline_ms
        if self.policy.default_deadline_ms is None:
            return requested
        return min(requested, self.policy.default_deadline_ms)


@dataclasses.dataclass(frozen=True)
class DeadlineShedSpec:
    """Picklable start-deadline degradation hook for the worker pool.

    The batch layer's ``expired_result`` contract is a callable
    ``(late_ms) -> ContainmentResult`` that fires at worker dequeue
    when a request missed its start deadline.  A closure satisfies it
    on the thread backend but cannot cross the process boundary; this
    frozen dataclass pickles by class reference plus fields, so the
    serving layer sheds identically on ``backend="thread"`` and
    ``backend="process"``.  Fields capture the queue state at dispatch
    time (the state that *admitted* the request — by dequeue time the
    event loop's live numbers are out of reach of a worker process
    anyway).
    """

    queue_depth: int
    queue_limit: int
    deadline_ms: float | None = None
    kernel: str = "auto"

    def __call__(self, late_ms: float) -> ContainmentResult:
        return shed_result(
            "deadline",
            queue_depth=self.queue_depth,
            queue_limit=self.queue_limit,
            waited_ms=(self.deadline_ms or 0.0) + late_ms,
            deadline_ms=self.deadline_ms,
            kernel=self.kernel,
        )


def shed_result(
    reason: str,
    *,
    queue_depth: int,
    queue_limit: int,
    waited_ms: float = 0.0,
    deadline_ms: float | None = None,
    kernel: str = "auto",
) -> ContainmentResult:
    """The degraded INCONCLUSIVE verdict for a shed request.

    Always carries ``details["admission"]`` — the shed reason, the
    queue state that forced it, and spend accounting (how long the
    request waited before being shed) — plus the engine's standard
    ``details["budget"]`` block so shed responses degrade exactly like
    budget-exhausted checks.
    """
    if reason not in SHED_REASONS:
        raise ValueError(f"unknown shed reason {reason!r}; use one of {SHED_REASONS}")
    spend = {"queued_ms": round(waited_ms, 3), "elapsed_ms": round(waited_ms, 3)}
    return ContainmentResult(
        Verdict.INCONCLUSIVE,
        "serve-admission",
        details={
            "admission": {
                "shed": reason,
                "queue_depth": queue_depth,
                "queue_limit": queue_limit,
                "deadline_ms": deadline_ms,
                "spend": spend,
            },
            "budget": {
                "exhausted": f"admission:{reason}",
                "spent": round(waited_ms, 3),
                "limit": deadline_ms if reason == "deadline" else queue_limit,
                "spend": spend,
            },
            "cache": "bypass",
            "kernel": {"requested": kernel, "selected": None},
        },
    )
