"""Live-server monitoring: the client side of ``repro top`` / ``repro
metrics --addr``.

A running :mod:`repro.serve` server exposes its whole metrics registry
through the ``metrics`` control verb; this module polls that verb over
a short-lived TCP connection and turns *pairs* of snapshots into the
operator's dashboard numbers — request/shed **rates** from counter
deltas, latency **quantiles** from histogram-bucket deltas, and the
instantaneous queue-depth/utilization gauges.

Everything below the socket helpers is a pure function of two snapshot
payloads, so the delta/quantile/rendering logic is unit-testable
without a live server.  Elapsed time between snapshots comes from the
*server's* ``uptime_ms`` (monotonic, one clock), never from client
wall-clock arithmetic.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping

__all__ = [
    "parse_addr",
    "fetch_control",
    "fetch_metrics",
    "counter_value",
    "histogram_state",
    "delta_quantile_ms",
    "top_deltas",
    "render_top",
]

#: Shed reasons rendered as individual columns (the suffixed counters).
SHED_REASONS = ("queue_full", "deadline", "draining")


def parse_addr(addr: str, *, default_port: int = 7407) -> tuple[str, int]:
    """``HOST:PORT`` / ``HOST`` / ``:PORT`` into a connectable pair."""
    host, sep, port_text = addr.rpartition(":")
    if not sep:
        return addr or "127.0.0.1", default_port
    if not port_text.isdigit():
        raise ValueError(f"address {addr!r} must look like HOST:PORT")
    return host or "127.0.0.1", int(port_text)


def fetch_control(
    host: str,
    port: int,
    verb: str = "metrics",
    *,
    last: int | None = None,
    timeout: float = 5.0,
) -> dict[str, Any]:
    """One control round-trip: connect, send the verb frame, read one line."""
    frame: dict[str, Any] = {"op": verb}
    if last is not None:
        frame["last"] = last
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall((json.dumps(frame) + "\n").encode("utf-8"))
        with conn.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line.strip():
        raise ConnectionError(f"{host}:{port} closed without answering {verb!r}")
    return json.loads(line)


def fetch_metrics(
    host: str, port: int, *, timeout: float = 5.0
) -> dict[str, Any]:
    """The ``metrics`` verb's payload from a live server."""
    return fetch_control(host, port, "metrics", timeout=timeout)


def counter_value(snapshot: Mapping[str, Any], name: str) -> float:
    """A counter/gauge value out of a metrics snapshot (0 when absent)."""
    data = snapshot.get(name)
    if not isinstance(data, Mapping):
        return 0.0
    value = data.get("value", 0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def histogram_state(
    snapshot: Mapping[str, Any], name: str
) -> tuple[int, dict[str, int]]:
    """A histogram's ``(count, cumulative buckets)`` (empty when absent)."""
    data = snapshot.get(name)
    if not isinstance(data, Mapping) or data.get("type") != "histogram":
        return 0, {}
    buckets = data.get("buckets")
    count = data.get("count", 0)
    return (
        int(count) if isinstance(count, (int, float)) else 0,
        dict(buckets) if isinstance(buckets, Mapping) else {},
    )


def _bucket_bound(key: str) -> float:
    return float("inf") if key == "+Inf" else float(key)


def delta_quantile_ms(
    prev: Mapping[str, Any],
    cur: Mapping[str, Any],
    name: str,
    q: float,
) -> float | None:
    """Estimate a quantile of *this window's* observations of a histogram.

    Subtracting the cumulative bucket counts of two snapshots yields the
    histogram of the observations that happened *between* them; the
    quantile is the upper bound of the first bucket covering rank
    ``q * window_count`` (the standard bucketed upper-bound estimate —
    an overestimate by at most one bucket width).  Returns None when
    the window saw no observations, and the largest finite boundary
    when the rank lands in the ``+Inf`` catch-all.
    """
    prev_count, prev_buckets = histogram_state(prev, name)
    cur_count, cur_buckets = histogram_state(cur, name)
    window = cur_count - prev_count
    if window <= 0:
        return None
    target = q * window
    finite_bound: float | None = None
    for key in sorted(cur_buckets, key=_bucket_bound):
        delta = cur_buckets.get(key, 0) - prev_buckets.get(key, 0)
        bound = _bucket_bound(key)
        if bound != float("inf"):
            finite_bound = bound
        if delta >= target and bound != float("inf"):
            return bound
    return finite_bound


def top_deltas(
    prev_payload: Mapping[str, Any], cur_payload: Mapping[str, Any]
) -> dict[str, Any]:
    """The dashboard numbers between two ``metrics``-verb payloads.

    Rates are per second of *server* uptime between the snapshots; a
    non-positive uptime delta (restarted server, same-tick poll) yields
    zero rates rather than nonsense.
    """
    prev = prev_payload.get("metrics", {})
    cur = cur_payload.get("metrics", {})
    uptime_delta_ms = float(cur_payload.get("uptime_ms", 0.0)) - float(
        prev_payload.get("uptime_ms", 0.0)
    )
    dt_s = uptime_delta_ms / 1000.0

    def rate(name: str) -> float:
        if dt_s <= 0:
            return 0.0
        return max(0.0, counter_value(cur, name) - counter_value(prev, name)) / dt_s

    return {
        "dt_s": round(max(0.0, dt_s), 3),
        # Which pool substrate the server runs (None on pre-backend
        # servers, whose metrics payloads lack the key).
        "backend": cur_payload.get("backend"),
        "requests_per_s": round(rate("serve.requests"), 2),
        "responses_per_s": round(rate("serve.responses"), 2),
        "shed_per_s": round(rate("serve.shed"), 2),
        "shed_by": {
            reason: round(rate(f"serve.shed.{reason}"), 2)
            for reason in SHED_REASONS
        },
        "protocol_errors_per_s": round(rate("serve.protocol_errors"), 2),
        "latency_p50_ms": delta_quantile_ms(prev, cur, "serve.latency_ms", 0.5),
        "latency_p95_ms": delta_quantile_ms(prev, cur, "serve.latency_ms", 0.95),
        "queued_p95_ms": delta_quantile_ms(prev, cur, "serve.queued_ms", 0.95),
        "queue_depth": int(counter_value(cur, "serve.queue_depth")),
        "worker_utilization": counter_value(cur, "serve.worker_utilization"),
    }


def _ms(value: float | None) -> str:
    return "-" if value is None else f"{value:g}ms"


def render_top(
    prev_payload: Mapping[str, Any],
    cur_payload: Mapping[str, Any],
    *,
    addr: str = "",
) -> str:
    """One refresh of the ``repro top`` display (two lines, no screen
    control — friendly to pipes and test assertions)."""
    deltas = top_deltas(prev_payload, cur_payload)
    shed_cols = " ".join(
        f"{reason}={deltas['shed_by'][reason]:g}" for reason in SHED_REASONS
    )
    backend = f"[{deltas['backend']}] " if deltas.get("backend") else ""
    header = (
        f"{addr + ' ' if addr else ''}{backend}dt={deltas['dt_s']:g}s "
        f"req/s={deltas['requests_per_s']:g} "
        f"resp/s={deltas['responses_per_s']:g} "
        f"shed/s={deltas['shed_per_s']:g} ({shed_cols}) "
        f"err/s={deltas['protocol_errors_per_s']:g}"
    )
    detail = (
        f"  latency p50~{_ms(deltas['latency_p50_ms'])} "
        f"p95~{_ms(deltas['latency_p95_ms'])} "
        f"queued p95~{_ms(deltas['queued_p95_ms'])} "
        f"depth={deltas['queue_depth']} "
        f"util={deltas['worker_utilization']:.0%}"
    )
    return header + "\n" + detail
