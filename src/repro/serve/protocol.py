"""Wire protocol for the serving layer: NDJSON frames in, NDJSON out.

One JSON object per line, in both directions.  The same frame grammar
is the ``repro batch`` workload format, so a workload file can be
replayed against a live server byte-for-byte — this module is the one
place the grammar is parsed (the CLI's ``parse_query`` delegates here).

Request frames::

    {"id": "p1", "left": "rpq:a a", "right": "rpq:a+"}
    {"id": "p2", "left": "rpq:a+", "right": "rpq:a a",
     "deadline_ms": 500, "kernel": "antichain", "max_expansions": 64}
    {"id": "p3", "left": "rpq:a", "right": "rpq:a+",
     "request_id": "trace-me-0007"}
    {"op": "health"}
    {"op": "metrics"}
    {"op": "debug", "last": 20}

- ``left`` / ``right`` use the ``kind:spec`` query syntax (kinds
  ``rpq``, ``rq``, ``datalog``).  A spec starting with ``@`` reads the
  named file, but **only** where the spec is operator-supplied — CLI
  arguments and workload files (``allow_files=True``).  Frames the
  server parses off a connection always reject ``@`` specs with a
  :class:`ProtocolError`: a remote peer must never be able to make the
  server read its own filesystem.  ``id`` is optional and echoed back
  verbatim (the frame index is the fallback identity).
- ``deadline_ms`` is the per-request wall-clock deadline the server
  inherits into the check's :class:`repro.budget.Budget` (it can only
  *tighten* the server default, never extend it).
- ``kernel`` / ``max_expansions`` are per-request engine options,
  validated here so a bad value is an error *response*, not a dropped
  connection.
- ``request_id`` is the request-scoped telemetry identity: if a client
  supplies one it is propagated verbatim into the access log, flight
  recorder, and response payload; otherwise the server assigns a unique
  one.  It is distinct from ``id`` (the caller's correlation key, which
  need not be unique).
- ``op`` selects a control verb (``health`` / ``metrics`` /
  ``debug``); absent or ``"contain"`` means a containment request.
  ``debug`` returns the flight recorder's entries (optionally only the
  newest ``last``).

Response frames mirror ``repro batch`` result lines: ``id``, ``index``
(input position), ``verdict``, ``method``, ``holds``, ``bound``,
``wall_ms``, ``worker``, plus ``error`` / ``budget`` / ``kernel`` /
``admission`` details when present, and ``request_id`` (server-assigned
or propagated) when the frame was served by a telemetry-aware server.

Malformed frames are *isolated*: parsing surfaces a
:class:`ProtocolError` (or the underlying parse exception), and callers
convert it into an error response re-interleaved at the frame's input
position — mirroring ``repro batch`` semantics, where a bad workload
line yields an ERROR result line, never an abort.  Input order is
always preserved.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Mapping

from ..automata.antichain import resolve_kernel
from ..core.batch import BatchItem, error_result
from ..datalog.parser import parse_program
from ..rpq.rpq import RPQ, TwoRPQ
from ..rq.parser import parse_rq

__all__ = [
    "CONTROL_VERBS",
    "SERVE_SCHEMA",
    "ContainRequest",
    "ControlRequest",
    "ProtocolError",
    "WorkloadParse",
    "encode_frame",
    "error_item",
    "parse_frame",
    "parse_query_spec",
    "parse_workload",
    "response_payload",
]

#: Control verbs a server answers without touching the worker pool.
CONTROL_VERBS = ("health", "metrics", "debug")

#: Wire/workload grammar version, reported by the ``health`` verb so
#: operators can correlate dumps with the protocol a server speaks.
SERVE_SCHEMA = "repro-serve/1"


class ProtocolError(ValueError):
    """A malformed wire frame or workload line (isolated, never fatal)."""


def parse_query_spec(argument: str, *, allow_files: bool = False) -> Any:
    """Parse a ``kind:spec`` query argument (kinds: rpq, rq, datalog).

    A spec starting with ``@`` reads the named file — but only when
    *allow_files* is set, i.e. when the spec is operator-supplied (a
    CLI argument or a workload-file line).  The secure-by-default
    ``False`` is what the server uses for frames off a connection, so
    no remote peer can direct the process at its own filesystem.

    Structural problems (missing/unknown kind, a rejected ``@`` spec)
    raise :class:`ProtocolError`; query-syntax errors propagate as the
    underlying parser's exception so error responses report the real
    type.
    """
    kind, _, spec = argument.partition(":")
    if not spec:
        raise ProtocolError(
            f"query {argument!r} must look like kind:spec "
            "(kinds: rpq, rq, datalog)"
        )
    if spec.startswith("@") and not allow_files:
        raise ProtocolError(
            "file specs (@path) are only accepted from the CLI and "
            "workload files, not over the wire"
        )
    text = pathlib.Path(spec[1:]).read_text() if spec.startswith("@") else spec
    if kind == "rpq":
        query = TwoRPQ.parse(text)
        return RPQ(query.regex) if query.is_one_way() else query
    if kind == "rq":
        return parse_rq(text)
    if kind == "datalog":
        return parse_program(text)
    raise ProtocolError(f"unknown query kind {kind!r} (use rpq, rq, or datalog)")


@dataclasses.dataclass(frozen=True)
class ContainRequest:
    """One parsed containment frame.

    Attributes:
        index: position of the frame in its input stream.
        id: the caller's identifier (frame index when absent).
        left / right: the parsed query objects.
        deadline_ms: per-request wall-clock deadline, or None.
        options: validated per-request engine options
            (``kernel`` / ``max_expansions`` only).
        request_id: client-supplied telemetry identity (None = the
            server assigns one).
    """

    index: int
    id: Any
    left: Any
    right: Any
    deadline_ms: float | None = None
    options: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    request_id: str | None = None


@dataclasses.dataclass(frozen=True)
class ControlRequest:
    """A ``health`` / ``metrics`` / ``debug`` control frame.

    ``last`` bounds how many flight-recorder entries a ``debug`` frame
    asks for (None = all retained); other verbs ignore it.
    """

    index: int
    id: Any
    verb: str
    last: int | None = None
    request_id: str | None = None


def parse_frame(
    line: str, index: int = 0, *, allow_files: bool = False
) -> ContainRequest | ControlRequest:
    """Parse one NDJSON frame into a request object.

    *allow_files* gates ``@`` file specs exactly as in
    :func:`parse_query_spec`: leave it ``False`` (the default) for
    frames read off a connection.

    Raises :class:`ProtocolError` for structural problems and lets
    query-parser exceptions propagate; callers isolate both as error
    responses at this frame's input position.
    """
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(record, dict):
        raise ProtocolError("frame must be a JSON object")
    identifier = record.get("id", index)
    request_id = record.get("request_id")
    if request_id is not None:
        if not isinstance(request_id, str) or not request_id:
            raise ProtocolError("request_id must be a non-empty string")
        if len(request_id) > 128:
            raise ProtocolError("request_id must be at most 128 characters")
    verb = record.get("op", "contain")
    if verb in CONTROL_VERBS:
        last = record.get("last")
        if last is not None:
            if not isinstance(last, int) or isinstance(last, bool) or last < 1:
                raise ProtocolError("last must be a positive integer")
        return ControlRequest(
            index=index,
            id=identifier,
            verb=verb,
            last=last,
            request_id=request_id,
        )
    if verb != "contain":
        raise ProtocolError(
            f"unknown op {verb!r} (use contain, {', or '.join(CONTROL_VERBS)})"
        )
    for key in ("left", "right"):
        if key not in record:
            raise ProtocolError(f"contain frame is missing {key!r}")
        if not isinstance(record[key], str):
            raise ProtocolError(f"{key!r} must be a kind:spec string")
    deadline_ms = record.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ) or deadline_ms <= 0:
            raise ProtocolError("deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    options: dict[str, Any] = {}
    if record.get("kernel") is not None:
        kernel = record["kernel"]
        try:
            resolve_kernel(kernel)
        except Exception as exc:
            raise ProtocolError(str(exc)) from None
        options["kernel"] = kernel
    if record.get("max_expansions") is not None:
        max_expansions = record["max_expansions"]
        if not isinstance(max_expansions, int) or isinstance(
            max_expansions, bool
        ) or max_expansions < 1:
            raise ProtocolError("max_expansions must be a positive integer")
        options["max_expansions"] = max_expansions
    return ContainRequest(
        index=index,
        id=identifier,
        left=parse_query_spec(record["left"], allow_files=allow_files),
        right=parse_query_spec(record["right"], allow_files=allow_files),
        deadline_ms=deadline_ms,
        options=options,
        request_id=request_id,
    )


def error_item(
    index: int, exc: BaseException, request_id: str | None = None
) -> BatchItem:
    """The isolated ERROR item for a frame that failed to parse."""
    return BatchItem(index, error_result(index, exc), 0.0, None, request_id)


@dataclasses.dataclass(frozen=True)
class WorkloadParse:
    """A parsed NDJSON workload: requests plus isolated parse failures.

    ``requests[k].index`` and the keys of ``failures`` partition
    ``range(count)`` — every non-blank input line is accounted for at
    its original position, in order.
    """

    requests: tuple[ContainRequest, ...]
    failures: dict[int, BatchItem]
    count: int


def parse_workload(text: str, *, allow_files: bool = True) -> WorkloadParse:
    """Parse a whole NDJSON workload, isolating malformed lines.

    The shared parsing path of ``repro batch`` and the soak clients: a
    bad line becomes an ERROR :class:`BatchItem` keyed by its line
    position (blank lines skipped), never an abort; control verbs are
    rejected per line (a workload is containment requests only).
    Workload files are operator-supplied, so ``@`` file specs default
    to allowed here (unlike wire frames; see :func:`parse_query_spec`).
    """
    requests: list[ContainRequest] = []
    failures: dict[int, BatchItem] = {}
    lines = [line for line in text.splitlines() if line.strip()]
    for line_no, line in enumerate(lines):
        try:
            frame = parse_frame(line, line_no, allow_files=allow_files)
            if isinstance(frame, ControlRequest):
                raise ProtocolError(
                    f"control verb {frame.verb!r} is not a workload line"
                )
        except Exception as exc:
            failures[line_no] = error_item(line_no, exc)
            continue
        requests.append(frame)
    return WorkloadParse(
        requests=tuple(requests), failures=failures, count=len(lines)
    )


def response_payload(
    identifier: Any, item: BatchItem, *, index: int | None = None
) -> dict[str, Any]:
    """The NDJSON response object for one item (``repro batch`` shape)."""
    payload: dict[str, Any] = {"id": identifier, **item.to_dict()}
    if index is not None:
        payload["index"] = index
    return payload


def encode_frame(payload: Mapping[str, Any]) -> str:
    """Serialize one response frame (sorted keys, trailing newline)."""
    return json.dumps(dict(payload), sort_keys=True, default=str) + "\n"
