"""The serving layer: a long-lived front door for containment checks.

Composes the worker-pool batch substrate (:mod:`repro.core.batch`), the
resource governor (:mod:`repro.budget`), and the metrics registry
(:mod:`repro.obs.metrics`) into an asyncio NDJSON service
(``repro serve``) with bounded-queue admission control, load shedding,
and graceful drain.  See DESIGN.md "Serving architecture".

Telemetry companions: :mod:`repro.serve.monitor` is the client side of
``repro top`` / ``repro metrics --addr`` (snapshot deltas into rates
and quantiles); the server side's access log / flight recorder live in
:mod:`repro.obs.telemetry`.  See DESIGN.md "Operational telemetry".
"""

from .admission import AdmissionController, AdmissionPolicy, shed_result
from .monitor import fetch_control, fetch_metrics, parse_addr, render_top, top_deltas
from .protocol import (
    ContainRequest,
    ControlRequest,
    ProtocolError,
    encode_frame,
    parse_frame,
    parse_query_spec,
    parse_workload,
    response_payload,
)
from .server import ContainmentServer, ServeConfig

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ContainRequest",
    "ContainmentServer",
    "ControlRequest",
    "ProtocolError",
    "ServeConfig",
    "encode_frame",
    "fetch_control",
    "fetch_metrics",
    "parse_addr",
    "parse_frame",
    "parse_query_spec",
    "parse_workload",
    "render_top",
    "response_payload",
    "shed_result",
    "top_deltas",
]
