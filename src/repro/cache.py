"""Canonical-form-keyed LRU caches for the compilation pipeline.

The containment engine recompiles the same artifacts constantly: a
workload of ``check(Q1, Q2)`` calls re-derives regex→NFA compilations,
NFA→DFA determinizations, and — for repeated query pairs — entire
containment verdicts.  This module provides the shared memoization
layer: small, bounded LRU caches with hit/miss/eviction counters that
the benchmarks read off via :func:`cache_stats`.

Canonical-key rules (see DESIGN.md "Performance architecture"):

- **Keys bind full structural identity.**  A regex key is the frozen
  AST itself; an NFA key is the tuple of (alphabet, states, initial,
  final, transition table) — state *objects* included, so two automata
  share an entry only when they are equal component-for-component,
  never merely isomorphic.  This keeps cached values exact drop-ins
  (e.g. a cached DFA's subset states mention the caller's own NFA
  states).
- **Values are immutable** (frozen dataclasses over frozensets), so
  sharing needs no copying and no invalidation: a key can never go
  stale because nothing it points to can change.  The only eviction is
  LRU pressure.
- **Instrumentation must not poison keys.**  Callers passing mutable
  instrumentation (e.g. ``stats=`` objects) opt out of caching — the
  engine skips the cache whenever an option does not hash.

:func:`clear_caches` resets contents (benchmarks call it between
ablation arms so both arms compile from cold).

Concurrency (DESIGN.md "Concurrency architecture"): every cache is
thread-safe.  A per-cache re-entrant lock guards the entry table and
the counters, and :meth:`LRUCache.get_or_compute` is **single-flight**:
concurrent misses on the same key run ``compute()`` exactly once — the
first caller computes while the rest wait on the in-flight entry and
are then served (and counted) as hits.  Stats therefore stay exact
under the batch layer's worker pools: one cold key costs one miss and
one compute no matter how many workers race on it.
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Mapping

# --- global switch --------------------------------------------------------------

_CACHING_ENABLED = True


def caching_enabled() -> bool:
    """Whether the cache layer is active (disabled = every call recomputes)."""
    return _CACHING_ENABLED


def set_caching(enabled: bool) -> bool:
    """Enable/disable all caches globally; returns the previous value."""
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def use_caching(enabled: bool = True) -> Iterator[None]:
    """Context manager form of :func:`set_caching`."""
    previous = set_caching(enabled)
    try:
        yield
    finally:
        set_caching(previous)


# --- the cache type -------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache (surfaced to benchmarks).

    The object identity is part of the contract: resets happen **in
    place** (:meth:`reset`), so a handle hoisted once (``stats =
    cache.stats``) keeps reporting the live counters across
    :func:`clear_caches` — the same convention as
    :meth:`repro.obs.metrics.MetricsRegistry.reset`.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        """Zero the counters in place (hoisted handles stay valid)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _InFlight:
    """One in-progress ``get_or_compute`` computation (single-flight)."""

    __slots__ = ("event", "owner", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.owner = threading.get_ident()
        self.value: Any = None
        self.error: BaseException | None = None


class LRUCache:
    """A bounded least-recently-used cache with instrumentation.

    ``None`` is not a legal cached value (:meth:`get` uses it as the
    miss sentinel); every value in this package is a result object, so
    the restriction costs nothing.

    Thread-safe: a re-entrant lock guards the entry table and counters,
    and :meth:`get_or_compute` is single-flight (see module docstring).
    ``compute()`` itself always runs outside the lock, so a computation
    may recurse into the same cache freely.
    """

    def __init__(self, name: str, maxsize: int = 1024) -> None:
        self.name = name
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: dict[Hashable, _InFlight] = {}
        _REGISTRY[name] = self

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up *key*, counting a hit or miss; no-op when disabled."""
        if not _CACHING_ENABLED:
            return default
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up *key* without touching counters or LRU order.

        For callers probing several candidate keys per logical request
        (the engine's exact-vs-budgeted containment keys): only the
        authoritative lookup should count toward hit/miss stats.
        """
        if not _CACHING_ENABLED:
            return default
        with self._lock:
            return self._entries.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past ``maxsize``."""
        if not _CACHING_ENABLED or value is None:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` falling back to ``compute()`` — run exactly once per key.

        Single-flight: when several threads miss the same cold key
        concurrently, one (the *leader*) runs ``compute()`` while the
        rest block on the in-flight entry and receive the leader's
        value.  Exactly one miss is counted (the leader's); followers
        count as hits, because they were served without computing —
        so the counters match what a sequential interleaving of the
        same requests would have recorded.  If the leader's compute
        raises, followers re-raise the same exception and nothing is
        cached.  A re-entrant call from the leader's own ``compute()``
        on the same key (pathological but possible) computes directly
        instead of deadlocking.
        """
        if not _CACHING_ENABLED:
            return compute()
        while True:
            with self._lock:
                value = self._entries.get(key)
                if value is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return value
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    self.stats.misses += 1
                    break  # this thread is the leader
                if flight.owner == threading.get_ident():
                    # Re-entrant same-key compute: fall back to direct
                    # computation rather than waiting on ourselves.
                    self.stats.misses += 1
                    value = compute()
                    self.put(key, value)
                    return value
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            if flight.value is not None:
                with self._lock:
                    self.stats.hits += 1
                return flight.value
            # Leader computed None (uncacheable): loop and retry fresh.
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        self.put(key, value)
        flight.value = value
        with self._lock:
            self._inflight.pop(key, None)
        flight.event.set()
        return value

    def clear(self, reset_stats: bool = False) -> None:
        """Empty the cache; optionally zero the counters **in place**.

        The stats object is never rebound: hoisted ``cache.stats``
        handles keep observing the live counters after a clear (the
        contract :mod:`repro.obs.metrics` documents for its registry).
        """
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats.reset()


# --- registry -------------------------------------------------------------------

_REGISTRY: dict[str, LRUCache] = {}


def cache_stats() -> dict[str, dict[str, Any]]:
    """Machine-readable snapshot of every cache (for benchmark tables)."""
    return {
        name: {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "evictions": cache.stats.evictions,
            "hit_rate": round(cache.stats.hit_rate, 4),
            "size": len(cache),
            "maxsize": cache.maxsize,
        }
        for name, cache in _REGISTRY.items()
    }


def clear_caches(reset_stats: bool = True) -> None:
    """Empty every registered cache (benchmarks: cold-start both arms)."""
    for cache in _REGISTRY.values():
        cache.clear(reset_stats=reset_stats)


def merge_stats_delta(deltas: Mapping[str, Mapping[str, int]]) -> None:
    """Fold another process's hit/miss/eviction increments into this
    process's cache counters.

    The cache half of worker telemetry repatriation (the metrics half
    is :func:`repro.obs.metrics.merge_snapshot_delta`): a process-pool
    worker diffs :func:`cache_stats` around one item and the parent
    merges the counter deltas here, so ``cache_stats()`` in the parent
    reports the work that actually happened.  Only the counters merge —
    ``size`` stays local, because the *entries* live in the worker
    process and never cross the boundary.  Unknown cache names are
    ignored (all caches are module-level, so the names always exist in
    a same-version parent; a skew just loses telemetry, never breaks).
    """
    for name, delta in deltas.items():
        cache = _REGISTRY.get(name)
        if cache is None:
            continue
        with cache._lock:
            cache.stats.hits += int(delta.get("hits", 0))
            cache.stats.misses += int(delta.get("misses", 0))
            cache.stats.evictions += int(delta.get("evictions", 0))


# --- the package's shared caches --------------------------------------------------

#: regex AST -> reduced NFA (the Thompson construction + reduce_nfa).
regex_nfa_cache = LRUCache("regex-nfa", maxsize=1024)

#: (NFA canonical key, alphabet) -> complete DFA (subset construction).
determinize_cache = LRUCache("determinize", maxsize=512)

#: (Q1 key, Q2 key, options) -> ContainmentResult (the engine front door).
containment_cache = LRUCache("containment", maxsize=2048)

#: ("ctx", NFA canonical key, snapshot fingerprint) -> compiled evaluation
#: context (IndexedNFA + per-symbol adjacency rows resolved against one
#: GraphSnapshot).  Values are immutable after construction; the
#: fingerprint component makes entries for a mutated database
#: unreachable (DESIGN.md "Evaluation architecture").
eval_context_cache = LRUCache("eval-context", maxsize=256)

#: ("pairs", NFA canonical key, snapshot fingerprint) -> frozenset of
#: (source, target) answer pairs — the set-at-a-time RPQ/2RPQ result.
evaluation_cache = LRUCache("evaluation", maxsize=1024)

#: (C2RPQ canonical key, snapshot fingerprint) -> (CQ, Instance): each
#: distinct regular atom instantiated once per snapshot, shared by every
#: membership test the expansion-based containment loops run.  The
#: Instance is treated as frozen after construction (readers only).
instantiate_cache = LRUCache("instantiate", maxsize=512)


# --- canonical keys ----------------------------------------------------------------


def nfa_cache_key(nfa: Any, alphabet: tuple[str, ...] | None = None) -> Hashable:
    """Structural identity key for an NFA (plus the target alphabet).

    Binds the exact states, transition table, and alphabet, so a cache
    entry is shared only between calls that would compute byte-identical
    results (see the module docstring's canonical-key rules).
    """
    return (
        alphabet if alphabet is not None else nfa.alphabet,
        nfa.states,
        nfa.initial,
        nfa.final,
        frozenset(nfa.transitions.items()),
    )


def query_cache_key(query: Any) -> Hashable | None:
    """A cache key for a query object, or None when it does not hash.

    Query syntax objects across the towers (regexes, TwoRPQ/RPQ, CQ/UCQ,
    Datalog programs, RQ terms) are frozen dataclasses, so they hash;
    anything else opts out of caching rather than risking staleness.
    """
    try:
        hash(query)
    except TypeError:
        return None
    return (type(query).__module__, type(query).__qualname__, query)
