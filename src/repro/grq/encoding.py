"""Encoding arbitrary-arity relations by binary relations (Theorem 8).

The paper reduces GRQ containment to RQ containment by "encoding
relations of arbitrary arity by binary relations" [48].  The encoding
implemented here is the standard reification: a fact ``R(a1, .., ak)``
becomes a fresh fact node ``f`` with binary edges ``R#i(f, a_i)`` for
each position ``i``; a k-ary atom in a query becomes a fresh existential
variable with k binary atoms.

The encoding preserves homomorphisms in both directions (fact nodes map
to fact nodes because only they have outgoing ``R#i`` edges for every
position of ``R``), hence preserves CQ/UCQ containment — benchmark E8
verifies this empirically on random query pairs.
"""

from __future__ import annotations

import itertools

from ..cq.syntax import CQ, UCQ, Atom, Var, is_var
from ..graphdb.database import GraphDatabase
from ..relational.instance import Instance


def position_label(predicate: str, position: int) -> str:
    """The binary edge label for position *position* of *predicate*."""
    return f"{predicate}#{position}"


def encode_instance(instance: Instance) -> GraphDatabase:
    """Reify every fact of *instance* as a fact node with position edges."""
    graph = GraphDatabase()
    for constant in instance.active_domain:
        graph.add_node(("c", constant))
    for index, (predicate, row) in enumerate(sorted(instance.facts(), key=repr)):
        fact_node = ("f", predicate, row)
        graph.add_node(fact_node)
        for position, value in enumerate(row):
            graph.add_edge(fact_node, position_label(predicate, position), ("c", value))
    return graph


def encode_cq(cq: CQ) -> CQ:
    """Reify every atom of *cq*: same head, binary body over ``R#i`` labels.

    Constants in atoms are kept as (tagged) constants so the encoding
    composes with :func:`encode_instance`.
    """
    counter = itertools.count()
    atoms: list[Atom] = []
    for atom in cq.body:
        fact_var = Var(f"__fact{next(counter)}")
        for position, term in enumerate(atom.args):
            value = term if is_var(term) else ("c", term)
            atoms.append(Atom(position_label(atom.predicate, position), (fact_var, value)))
    # Head variables stay; but the frozen-constant tagging must match
    # encode_instance, which wraps constants in ("c", _).  Variables map
    # to variables, so the head is unchanged.
    return CQ(cq.head_vars, tuple(atoms))


def encode_ucq(ucq: UCQ) -> UCQ:
    return UCQ(tuple(encode_cq(cq) for cq in ucq))


def encode_head(head: tuple) -> tuple:
    """Encode a constant tuple the way :func:`encode_instance` tags it."""
    return tuple(("c", value) for value in head)
