"""GRQ — Generalized Regular Queries (Section 4): membership, binary
encoding, containment (Theorem 8 class)."""

from .containment import NotGRQError, grq_contained, grq_equivalent
from .encoding import (
    encode_cq,
    encode_head,
    encode_instance,
    encode_ucq,
    position_label,
)
from .membership import GRQReport, check_grq, is_graph_grq, is_grq
from .to_rq import grq_to_rq

__all__ = [
    "NotGRQError",
    "grq_contained",
    "grq_equivalent",
    "encode_cq",
    "encode_head",
    "encode_instance",
    "encode_ucq",
    "position_label",
    "grq_to_rq",
    "GRQReport",
    "check_grq",
    "is_graph_grq",
    "is_grq",
]
