"""GRQ membership: is recursion used only for transitive closure?

Section 4.1 defines GRQ as Datalog in which "recursion can be used only
to define transitive closure of binary relations".  Operationally (and
matching exactly the shapes the RQ -> Datalog translation emits), a
program is GRQ iff every recursive predicate ``P``:

- is binary,
- forms a singleton strongly connected component (no mutual recursion),
- has every recursive rule of one of the two linear TC-step shapes

  ``P(x, z) :- P(x, y), B(y, z)``    (left-linear)
  ``P(x, z) :- B(x, y), P(y, z)``    (right-linear)

  with ``x, y, z`` pairwise distinct variables and ``B`` a binary
  predicate that does not depend on ``P``, and
- has at least one non-recursive (base) rule, each of whose bodies
  avoids ``P`` entirely.

The checker reports *why* a program fails, which the examples use to
explain the GRQ boundary to users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cq.syntax import Atom, is_var
from ..datalog.analysis import dependence_graph, recursive_predicates
from ..datalog.syntax import Program, Rule


@dataclass(frozen=True)
class GRQReport:
    """Outcome of a GRQ membership check."""

    is_grq: bool
    violations: tuple[str, ...] = ()
    recursive_predicates: frozenset[str] = frozenset()


def _is_tc_step(rule: Rule, predicate: str) -> bool:
    """Does *rule* match one of the two linear TC-step shapes for P?"""
    head = rule.head
    if head.predicate != predicate or head.arity != 2:
        return False
    if len(rule.body) != 2:
        return False
    x, z = head.args
    if not (is_var(x) and is_var(z)) or x == z:
        return False
    first, second = rule.body
    for recursive_atom, other_atom, left_linear in (
        (first, second, True),
        (second, first, False),
    ):
        if recursive_atom.predicate != predicate:
            continue
        if other_atom.predicate == predicate:
            continue  # two recursive atoms: nonlinear, not TC
        if recursive_atom.arity != 2 or other_atom.arity != 2:
            continue
        if left_linear:
            # P(x, z) :- P(x, y), B(y, z)
            px, py = recursive_atom.args
            by, bz = other_atom.args
            if (
                px == x
                and is_var(py)
                and py not in (x, z)
                and by == py
                and bz == z
            ):
                return True
        else:
            # P(x, z) :- B(x, y), P(y, z)
            bx, by = other_atom.args
            py, pz = recursive_atom.args
            if (
                bx == x
                and is_var(by)
                and by not in (x, z)
                and py == by
                and pz == z
            ):
                return True
    return False


def check_grq(program: Program) -> GRQReport:
    """Classify *program*; see the module docstring for the criterion."""
    recursive = recursive_predicates(program) & program.idb_predicates
    graph = dependence_graph(program)
    violations: list[str] = []

    components = graph.strongly_connected_components()
    for component in components:
        members = component & recursive
        if len(members) > 1:
            violations.append(
                f"mutually recursive predicates {sorted(members)} "
                "(recursion beyond transitive closure)"
            )

    for predicate in sorted(recursive):
        arity = program.arity_of(predicate)
        if arity != 2:
            violations.append(
                f"recursive predicate {predicate} has arity {arity}, "
                "but GRQ recursion must define binary relations"
            )
            continue
        base_rules = []
        for rule in program.rules_for(predicate):
            body_predicates = {atom.predicate for atom in rule.body}
            if predicate in body_predicates:
                if not _is_tc_step(rule, predicate):
                    violations.append(
                        f"recursive rule {rule!r} is not a linear "
                        "transitive-closure step"
                    )
            else:
                if recursive & body_predicates:
                    # A base rule may use other (lower) recursive
                    # predicates - those are separate TC components.
                    pass
                base_rules.append(rule)
        if not base_rules:
            violations.append(
                f"recursive predicate {predicate} has no base rule"
            )

    return GRQReport(not violations, tuple(violations), frozenset(recursive))


def is_grq(program: Program) -> bool:
    """Boolean convenience wrapper around :func:`check_grq`."""
    return check_grq(program).is_grq


def is_graph_grq(program: Program) -> bool:
    """Is this moreover an *RQ-style* program (all EDB predicates binary)?

    The paper's RQ sits inside GRQ by restricting atoms to binary
    relations; GRQ proper allows arbitrary-arity EDB atoms.
    """
    if not is_grq(program):
        return False
    return all(program.arity_of(pred) == 2 for pred in program.edb_predicates)
