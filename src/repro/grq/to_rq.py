"""GRQ -> RQ: the reduction behind Theorem 8, for graph-schema programs.

The paper reduces GRQ containment to RQ containment.  For programs over
a *binary* EDB (the graph-database schema; higher arities go through
:mod:`repro.grq.encoding` first) the reduction is constructive and
implemented here: every IDB predicate of a GRQ program is translated,
bottom-up along the dependence order, into an RQ algebra term.

- A **non-recursive** predicate is the disjunction over its rules of the
  conjunction of its body atoms (EDB atoms become edge atoms, IDB atoms
  instantiate the already-translated term), projected to the head.
- A **recursive** predicate ``P`` passes the GRQ membership check, so
  its rules are base rules (no ``P`` in the body) plus linear TC steps
  ``P(x,z) :- P(x,y), B(y,z)`` and/or ``P(x,z) :- C(x,y), P(y,z)``.
  The least fixpoint of ``X = base ∪ X;B ∪ C;X`` is ``C* ; base ; B*``
  (left and right appends commute through the middle), which is an RQ:
  compositions are join+project and ``X* = id ∨ X+``.

Caveats, shared with :mod:`repro.rq.embeddings`: constants in rules are
not supported (RQ atoms are variable-only), and the identity relation
used by ``X*`` ranges over edge-incident nodes — harmless here because
every value a GRQ program derives is an edge endpoint.
"""

from __future__ import annotations

import itertools

from ..cq.syntax import Atom, Var, is_var
from ..datalog.analysis import dependence_graph, recursive_predicates
from ..datalog.syntax import Program, Rule
from ..rq.embeddings import identity_query
from ..rq.syntax import (
    And,
    EdgeAtom,
    Or,
    Project,
    RQ,
    RQError,
    Select,
    TransitiveClosure,
    rename,
)
from .membership import check_grq
from .containment import NotGRQError


class _Translator:
    def __init__(self, program: Program) -> None:
        report = check_grq(program)
        if not report.is_grq:
            raise NotGRQError("input", report.violations)
        for predicate in program.edb_predicates:
            if program.arity_of(predicate) != 2:
                raise RQError(
                    f"grq_to_rq needs a binary (graph) EDB; {predicate} has "
                    f"arity {program.arity_of(predicate)} — encode it first "
                    "(repro.grq.encoding)"
                )
        self.program = program
        self.recursive = recursive_predicates(program)
        self.alphabet = tuple(sorted(program.edb_predicates))
        self.definitions: dict[str, RQ] = {}
        self.counter = itertools.count()

    # -- variable hygiene -------------------------------------------------------

    def _freshen(self, term: RQ, head_targets: tuple[Var, ...]) -> RQ:
        """Rename *term* so its head becomes *head_targets* and every other
        variable lands in a fresh namespace (no capture at call sites)."""
        stamp = next(self.counter)
        mapping = {
            old.name: new.name for old, new in zip(term.head_vars, head_targets)
        }
        for node in term.walk():
            if isinstance(node, EdgeAtom):
                for var in (node.source, node.target):
                    mapping.setdefault(var.name, f"{var.name}~{stamp}")
        return rename(term, mapping)

    def _fresh_var(self) -> Var:
        return Var(f"__g{next(self.counter)}")

    # -- rule translation ---------------------------------------------------------

    def _atom_term(self, atom: Atom) -> RQ:
        """An RQ term whose head lists the atom's *distinct* variables in
        order of first occurrence, constrained exactly like the atom."""
        if not all(is_var(term) for term in atom.args):
            raise RQError(
                f"constants are outside the RQ algebra: {atom!r}"
            )
        args: tuple[Var, ...] = atom.args  # type: ignore[assignment]
        if atom.predicate in self.program.idb_predicates:
            base = self.definitions[atom.predicate]
            # Instantiate with temporaries, then identify repeats.
            temporaries = tuple(self._fresh_var() for _ in args)
            term = self._freshen(base, temporaries)
        else:
            temporaries = tuple(self._fresh_var() for _ in args)
            term = EdgeAtom(atom.predicate, temporaries[0], temporaries[1])
        # Identify repeated call variables via selection, then rename the
        # surviving temporaries to the call variables and project.
        seen: dict[Var, Var] = {}
        keep: list[Var] = []
        mapping: dict[str, str] = {}
        for temporary, call in zip(temporaries, args):
            if call in seen:
                term = Select(term, seen[call], temporary)
            else:
                seen[call] = temporary
                keep.append(temporary)
                mapping[temporary.name] = call.name
        term = Project(term, tuple(keep)) if tuple(keep) != term.head_vars else term
        return rename(term, mapping)

    def _body_term(self, body: tuple[Atom, ...]) -> RQ:
        terms = [self._atom_term(atom) for atom in body]
        node = terms[0]
        for term in terms[1:]:
            node = And(node, term)
        return node

    def _rule_term(self, rule: Rule, head_targets: tuple[Var, ...]) -> RQ:
        """Translate one rule; result's head is exactly *head_targets*."""
        if not rule.body:
            raise RQError(f"ground fact rules are outside RQ: {rule!r}")
        if not all(is_var(term) for term in rule.head.args):
            raise RQError(f"constant head terms are outside RQ: {rule!r}")
        body = self._body_term(rule.body)
        head_args: tuple[Var, ...] = rule.head.args  # type: ignore[assignment]
        # Repeated head variables duplicate a column via the identity
        # relation (sound: all derived values are edge-incident).
        columns: list[Var] = []
        used: set[Var] = set()
        augmented = body
        for position, var in enumerate(head_args):
            if var in used:
                duplicate = self._fresh_var()
                augmented = Select(
                    And(augmented, identity_query(self.alphabet, var, duplicate)),
                    var,
                    duplicate,
                )
                columns.append(duplicate)
            else:
                used.add(var)
                columns.append(var)
        projected = Project(augmented, tuple(columns))
        mapping = {col.name: target.name for col, target in zip(columns, head_targets)}
        return rename(projected, mapping)

    # -- predicate translation ------------------------------------------------------

    def translate_predicate(self, predicate: str) -> RQ:
        arity = self.program.arity_of(predicate)
        assert arity is not None
        head_targets = tuple(Var(f"__h{i}") for i in range(arity))
        rules = self.program.rules_for(predicate)
        if predicate not in self.recursive:
            pieces = [self._rule_term(rule, head_targets) for rule in rules]
            node = pieces[0]
            for piece in pieces[1:]:
                node = Or(node, piece)
            return node
        # Recursive: split into base rules and linear steps (shapes are
        # guaranteed by the GRQ membership check).
        x, y = head_targets
        base_pieces: list[RQ] = []
        left_steps: list[RQ] = []   # P ; B
        right_steps: list[RQ] = []  # C ; P
        for rule in rules:
            body_predicates = [atom.predicate for atom in rule.body]
            if predicate not in body_predicates:
                base_pieces.append(self._rule_term(rule, head_targets))
                continue
            first, second = rule.body
            if first.predicate == predicate:
                left_steps.append(self._atom_term_renamed(second, x, y))
            else:
                right_steps.append(self._atom_term_renamed(first, x, y))
        base = base_pieces[0]
        for piece in base_pieces[1:]:
            base = Or(base, piece)
        result = base
        if right_steps:
            result = self._compose(self._star(self._or_all(right_steps)), result)
        if left_steps:
            result = self._compose(result, self._star(self._or_all(left_steps)))
        return self._freshen(result, head_targets)

    def _atom_term_renamed(self, atom: Atom, x: Var, y: Var) -> RQ:
        term = self._atom_term(atom)
        if term.arity != 2:
            raise RQError(f"TC step relation {atom!r} is not binary")
        return self._freshen(term, (x, y))

    def _or_all(self, terms: list[RQ]) -> RQ:
        head = (self._fresh_var(), self._fresh_var())
        node = self._freshen(terms[0], head)
        for term in terms[1:]:
            node = Or(node, self._freshen(term, head))
        return node

    def _star(self, term: RQ) -> RQ:
        a, b = self._fresh_var(), self._fresh_var()
        aligned = self._freshen(term, (a, b))
        return Or(identity_query(self.alphabet, a, b), TransitiveClosure(aligned))

    def _compose(self, left: RQ, right: RQ) -> RQ:
        a, m, b = self._fresh_var(), self._fresh_var(), self._fresh_var()
        return Project(
            And(self._freshen(left, (a, m)), self._freshen(right, (m, b))),
            (a, b),
        )

    def run(self) -> RQ:
        graph = dependence_graph(self.program)
        for component in reversed(graph.strongly_connected_components()):
            for predicate in sorted(component):
                if predicate in self.program.idb_predicates:
                    self.definitions[predicate] = self.translate_predicate(predicate)
        return self.definitions[self.program.goal]


def grq_to_rq(program: Program) -> RQ:
    """Translate a (binary-EDB, constant-free) GRQ program to an RQ term.

    Raises :class:`repro.grq.containment.NotGRQError` when the program
    is outside GRQ and :class:`repro.rq.syntax.RQError` when it uses
    features RQ cannot express (constants, non-binary EDB).
    """
    return _Translator(program).run()
