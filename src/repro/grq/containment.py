"""GRQ containment (Theorem 8 class).

GRQ is the sweet spot the paper's whole narrative aims at: a fragment of
Datalog expressive enough for connectivity (unlike Monadic Datalog) with
a decidable — indeed elementary, 2EXPSPACE-complete — containment
problem (unlike full Datalog).

The procedure mirrors :mod:`repro.rq.containment`: the left program's
expansions (which unroll each TC component into explicit chains) are
each decided exactly by evaluating the right program over the
expansion's canonical database.  Both sides are first *verified* to be
GRQ — the decidability claim is specific to the fragment, and the
checker refuses programs outside it rather than silently running the
(sound-but-possibly-non-terminating) general Datalog procedure.
"""

from __future__ import annotations

from ..report import ContainmentResult, Counterexample, Verdict
from ..datalog.analysis import is_nonrecursive
from ..datalog.evaluation import evaluate
from ..datalog.syntax import Program
from ..datalog.unfolding import enumerate_expansions
from .membership import check_grq

DEFAULT_EXPANSION_BUDGET = 3000
DEFAULT_APPLICATION_BOUND = 20


class NotGRQError(ValueError):
    """Raised when a program offered to the GRQ checker is not in GRQ."""

    def __init__(self, which: str, violations: tuple[str, ...]) -> None:
        detail = "; ".join(violations)
        super().__init__(f"{which} program is not in GRQ: {detail}")
        self.violations = violations


def grq_contained(
    left: Program,
    right: Program,
    max_applications: int | None = DEFAULT_APPLICATION_BOUND,
    max_expansions: int | None = DEFAULT_EXPANSION_BUDGET,
) -> ContainmentResult:
    """Containment between two GRQ programs.

    Raises :class:`NotGRQError` if either side fails the membership
    check of :mod:`repro.grq.membership`.
    """
    for which, program in (("left", left), ("right", right)):
        report = check_grq(program)
        if not report.is_grq:
            raise NotGRQError(which, report.violations)
    if left.goal_arity != right.goal_arity:
        raise ValueError("arity mismatch between program goals")
    exhaustive = is_nonrecursive(left)
    iterator = enumerate_expansions(
        left,
        max_applications=None if exhaustive else max_applications,
        max_expansions=None if exhaustive else max_expansions,
    )
    checked = 0
    for expansion in iterator:
        checked += 1
        instance, head = expansion.canonical_instance()
        if head not in evaluate(right, instance):
            return ContainmentResult(
                Verdict.REFUTED,
                "grq-expansion",
                Counterexample(instance, head),
                details={"expansions_checked": checked},
            )
    if exhaustive:
        return ContainmentResult(
            Verdict.HOLDS, "grq-expansion", details={"expansions_checked": checked}
        )
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "grq-expansion",
        bound=max_expansions if max_expansions is not None else -1,
        details={"expansions_checked": checked, "max_applications": max_applications},
    )


def grq_equivalent(left: Program, right: Program) -> bool:
    """Truthy equivalence (both directions non-refuted)."""
    return grq_contained(left, right).holds and grq_contained(right, left).holds
