"""GRQ containment (Theorem 8 class).

GRQ is the sweet spot the paper's whole narrative aims at: a fragment of
Datalog expressive enough for connectivity (unlike Monadic Datalog) with
a decidable — indeed elementary, 2EXPSPACE-complete — containment
problem (unlike full Datalog).

The procedure mirrors :mod:`repro.rq.containment`: the left program's
expansions (which unroll each TC component into explicit chains) are
each decided exactly by evaluating the right program over the
expansion's canonical database.  Both sides are first *verified* to be
GRQ — the decidability claim is specific to the fragment, and the
checker refuses programs outside it rather than silently running the
(sound-but-possibly-non-terminating) general Datalog procedure.
"""

from __future__ import annotations

from ..automata.antichain import resolve_kernel
from ..budget import Budget, BudgetExhausted, bounded_result
from ..obs.trace import maybe_span
from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict
from ..datalog.analysis import is_nonrecursive
from ..datalog.evaluation import evaluate
from ..datalog.syntax import Program
from ..datalog.unfolding import enumerate_expansions
from .membership import check_grq

DEFAULT_EXPANSION_BUDGET = 3000
DEFAULT_APPLICATION_BOUND = 20


class NotGRQError(ValueError):
    """Raised when a program offered to the GRQ checker is not in GRQ."""

    def __init__(self, which: str, violations: tuple[str, ...]) -> None:
        detail = "; ".join(violations)
        super().__init__(f"{which} program is not in GRQ: {detail}")
        self.violations = violations


def grq_contained(
    left: Program,
    right: Program,
    max_applications: int | None = DEFAULT_APPLICATION_BOUND,
    max_expansions: int | None = DEFAULT_EXPANSION_BUDGET,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """Containment between two GRQ programs.

    Raises :class:`NotGRQError` if either side fails the membership
    check of :mod:`repro.grq.membership`.  An optional *budget*'s
    ``max_applications`` / ``max_expansions`` fields override the legacy
    kwargs; its deadline interrupts the enumeration cooperatively and is
    reported as a structured verdict, never an exception.  An optional
    *tracer* records a ``grq-membership`` span for the fragment check
    and an ``expansion-loop`` span counting expansions.  *kernel* is
    accepted for engine-wide option uniformity and validated eagerly;
    the expansion procedure runs no language-inclusion search (the
    engine records ``selected: None``).
    """
    resolve_kernel(kernel)
    with maybe_span(tracer, "grq-membership"):
        for which, program in (("left", left), ("right", right)):
            report = check_grq(program)
            if not report.is_grq:
                raise NotGRQError(which, report.violations)
    if left.goal_arity != right.goal_arity:
        raise ValueError("arity mismatch between program goals")
    app_bound, exp_bound, meter = _effective_bounds(
        budget, max_applications, max_expansions
    )
    exhaustive = is_nonrecursive(left)
    iterator = enumerate_expansions(
        left,
        max_applications=None if exhaustive else app_bound,
        max_expansions=None if exhaustive else exp_bound,
        meter=meter,
    )
    checked = 0
    try:
        with maybe_span(tracer, "expansion-loop", exhaustive=exhaustive) as span:
            try:
                for expansion in iterator:
                    checked += 1
                    if meter is not None:
                        meter.note("expansions")
                    instance, head = expansion.canonical_instance()
                    if head not in evaluate(right, instance):
                        return ContainmentResult(
                            Verdict.REFUTED,
                            "grq-expansion",
                            Counterexample(instance, head),
                            details={"expansions_checked": checked},
                        )
            finally:
                span.count("expansions", checked)
    except BudgetExhausted as exc:
        return bounded_result(
            "grq-expansion", exc, meter, details={"expansions_checked": checked}
        )
    if exhaustive:
        return ContainmentResult(
            Verdict.HOLDS, "grq-expansion", details={"expansions_checked": checked}
        )
    details = {"expansions_checked": checked, "max_applications": app_bound}
    if meter is not None:
        details["budget"] = {"spend": meter.spend()}
    return ContainmentResult(
        Verdict.HOLDS_UP_TO_BOUND,
        "grq-expansion",
        bound=exp_bound if exp_bound is not None else -1,
        details=details,
    )


def _effective_bounds(budget, max_applications, max_expansions):
    """Budget fields override the legacy kwargs; deadline gets a meter."""
    app_bound, exp_bound, meter = max_applications, max_expansions, None
    if budget is not None and not budget.is_null:
        if budget.max_applications is not None:
            app_bound = budget.max_applications
        if budget.max_expansions is not None:
            exp_bound = budget.max_expansions
        meter = Budget(deadline_ms=budget.deadline_ms).start()
    return app_bound, exp_bound, meter


def grq_equivalent(
    left: Program, right: Program, exact: bool = False, budget: Budget | None = None
) -> EquivalenceResult:
    """Equivalence via both containment directions.

    Returns an :class:`repro.report.EquivalenceResult` (truthy like the
    bool this used to return); with ``exact=True`` bounded directions do
    not count and are surfaced via ``bounded_directions``.
    """
    return EquivalenceResult(
        grq_contained(left, right, budget=budget),
        grq_contained(right, left, budget=budget),
        exact=exact,
    )
