"""Operational telemetry for the serving layer: access log, flight
recorder, sampled tracing.

The serving layer (:mod:`repro.serve`) answers frames; this module
answers the operator's questions about them after the fact:

- **Which request was that?**  Every served frame becomes one
  JSON-ready *access record* (:func:`access_record`) with a unique
  ``request_id``, op, verdict, shed reason, and the
  queue-wait/exec/total millisecond split, written as one NDJSON line
  by :class:`AccessLogWriter` — a *bounded, non-blocking* writer: the
  event loop enqueues a dict and moves on; serialization and file I/O
  happen on a background thread, and when the queue is full the record
  is dropped and counted (``telemetry.access_log.dropped``), never
  allowed to stall the server.
- **What just happened?**  :class:`FlightRecorder` keeps the last N
  records in a thread-safe ring buffer for post-mortems — dumpable
  live via the ``debug`` control verb and to a file on drain/SIGTERM.
  Retention policy: every record enters the ring, but full span
  *trees* are retained only for the interesting ones — slow
  (``slow_ms`` threshold), shed, or errored requests — so memory
  stays bounded by ``capacity`` small dicts plus a handful of trees.
- **Where does production time go?**  :class:`Sampler` deterministically
  samples a configurable fraction of requests for live tracing; the
  sampled span trees feed a :class:`repro.obs.profile.SpanProfile`
  hotspot aggregate that the ``metrics`` verb exposes, so the answer
  does not require a bench run.

:class:`Telemetry` is the facade the server holds: one ``observe()``
per served frame fans the record out to the log, the ring, and the
profile.  Everything here is zero-dependency and pay-for-what-you-use:
with no access log configured and a sample rate of 0, ``observe`` is a
dict build plus a deque append.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import queue
import threading
import time
from collections import deque
from typing import Any

from ..cache import cache_stats, merge_stats_delta
from .metrics import (
    counter as _metric_counter,
    merge_snapshot_delta,
    metrics_snapshot,
    snapshot_delta,
)
from .profile import SpanProfile

__all__ = [
    "ACCESS_LOG_SCHEMA",
    "FLIGHT_SCHEMA",
    "ACCESS_OPS",
    "AccessLogWriter",
    "FlightRecorder",
    "Sampler",
    "Telemetry",
    "TelemetryConfig",
    "access_record",
    "validate_access_record",
    "worker_telemetry_baseline",
    "worker_telemetry_delta",
    "merge_worker_telemetry",
]

#: Schema tag stamped into every access-log record.
ACCESS_LOG_SCHEMA = "repro-access/1"

#: Schema tag stamped into flight-recorder dumps.
FLIGHT_SCHEMA = "repro-flight/1"

#: Every ``op`` an access record may carry: the containment verb, the
#: control verbs, and ``invalid`` for frames that failed to parse.
ACCESS_OPS = ("contain", "health", "metrics", "debug", "invalid")

_LOG_WRITTEN = _metric_counter("telemetry.access_log.written")
_LOG_DROPPED = _metric_counter("telemetry.access_log.dropped")
_SAMPLED = _metric_counter("telemetry.sampled")


def access_record(
    *,
    request_id: str,
    op: str,
    index: int,
    client_id: Any = None,
    item: Any = None,
    shed: str | None = None,
    queued_ms: float = 0.0,
    exec_ms: float = 0.0,
    total_ms: float = 0.0,
    sampled: bool = False,
) -> dict[str, Any]:
    """Build the one NDJSON record describing one served frame.

    *item* is the frame's :class:`repro.core.batch.BatchItem` when one
    exists (containment requests, sheds, protocol errors); control
    verbs pass None and report no verdict.  The record never contains
    the span tree — traces are flight-recorder material, the access log
    stays one bounded line per frame.
    """
    record: dict[str, Any] = {
        "schema": ACCESS_LOG_SCHEMA,
        "ts": round(time.time(), 6),
        "request_id": request_id,
        "op": op,
        "id": client_id,
        "index": index,
        "verdict": None,
        "method": None,
        "holds": None,
        "shed": shed,
        "queued_ms": round(max(0.0, queued_ms), 3),
        "exec_ms": round(max(0.0, exec_ms), 3),
        "total_ms": round(max(0.0, total_ms), 3),
        "worker": None,
        "sampled": bool(sampled),
    }
    if item is not None:
        result = item.result
        record["verdict"] = result.verdict.value
        record["method"] = result.method
        record["holds"] = result.holds
        record["worker"] = item.worker
        details = dict(result.details)
        admission = details.get("admission")
        if shed is None and isinstance(admission, dict):
            record["shed"] = admission.get("shed")
        for key in ("cache", "budget", "kernel", "admission"):
            if key in details:
                record[key] = details[key]
        error = details.get("error")
        if isinstance(error, dict):
            # Type and message only: tracebacks belong to the response
            # payload and the flight recorder, not every log line.
            record["error"] = {
                "type": error.get("type"),
                "message": error.get("message"),
            }
    return record


def validate_access_record(record: Any) -> list[str]:
    """Schema-check one access record; returns the problems ([] = valid).

    The contract CI enforces over every line ``serve_smoke`` produces:
    identity and timing fields always present and typed, a known op,
    and a verdict exactly when the frame was a containment request.
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    if record.get("schema") != ACCESS_LOG_SCHEMA:
        problems.append(f"schema is {record.get('schema')!r}, "
                        f"not {ACCESS_LOG_SCHEMA!r}")
    request_id = record.get("request_id")
    if not isinstance(request_id, str) or not request_id:
        problems.append("request_id must be a non-empty string")
    op = record.get("op")
    if op not in ACCESS_OPS:
        problems.append(f"op {op!r} is not one of {ACCESS_OPS}")
    if not isinstance(record.get("index"), int):
        problems.append("index must be an integer")
    if not isinstance(record.get("ts"), (int, float)):
        problems.append("ts must be a number")
    for key in ("queued_ms", "exec_ms", "total_ms"):
        value = record.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value < 0:
            problems.append(f"{key} must be a non-negative number")
    if not isinstance(record.get("sampled"), bool):
        problems.append("sampled must be a boolean")
    if op == "contain":
        if not isinstance(record.get("verdict"), str):
            problems.append("contain record must carry a verdict")
        if not isinstance(record.get("method"), str):
            problems.append("contain record must carry a method")
    shed = record.get("shed")
    if shed is not None and not isinstance(shed, str):
        problems.append("shed must be null or a reason string")
    return problems


class AccessLogWriter:
    """Bounded, non-blocking NDJSON writer for the request access log.

    ``write(record)`` enqueues a dict and returns immediately; a
    daemon thread serializes and appends, flushing per line so a crash
    loses at most the in-queue tail.  When the queue is full the
    record is **dropped and counted** — the access log is telemetry,
    and telemetry must never become the bottleneck it is measuring.
    """

    def __init__(self, path: str, *, queue_size: int = 1024) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, not {queue_size}")
        self.path = str(path)
        self.written = 0
        self.dropped = 0
        self._queue: "queue.Queue[dict[str, Any] | None]" = queue.Queue(
            maxsize=queue_size
        )
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="access-log-writer", daemon=True
        )
        self._thread.start()

    def write(self, record: dict[str, Any]) -> bool:
        """Enqueue one record; True if accepted, False if dropped."""
        if self._closed:
            self.dropped += 1
            _LOG_DROPPED.inc()
            return False
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped += 1
            _LOG_DROPPED.inc()
            return False
        return True

    def _drain(self) -> None:
        with open(self.path, "a", encoding="utf-8") as stream:
            while True:
                record = self._queue.get()
                if record is None:
                    return
                stream.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n"
                )
                stream.flush()
                self.written += 1
                _LOG_WRITTEN.inc()

    def close(self, timeout: float = 5.0) -> None:
        """Flush queued records and stop the writer thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # The writer is always draining, so a blocking put terminates;
        # the timeout bounds a wedged filesystem.
        try:
            self._queue.put(None, timeout=timeout)
        except queue.Full:
            pass
        self._thread.join(timeout=timeout)

    def stats(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "written": self.written,
            "dropped": self.dropped,
            "queued": self._queue.qsize(),
        }


class FlightRecorder:
    """Thread-safe ring buffer of the last N request records.

    Every observed record lands in the ring (old entries fall off at
    ``capacity``); the full span tree is attached only when the
    request was *interesting* — shed, errored, or slower than
    ``slow_ms`` — which is the retention policy that keeps a crashed
    server's post-mortem dump both small and useful.  Writers may be
    any thread (the lock makes appends atomic — no torn or lost
    records at capacity); snapshots copy under the same lock.
    """

    def __init__(self, capacity: int = 256, *, slow_ms: float = 250.0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, not {capacity}")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self.recorded_total = 0
        self.retained_traces = 0
        self._entries: "deque[dict[str, Any]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def retains_trace(self, record: dict[str, Any]) -> bool:
        """Whether this record's span tree survives into the ring."""
        if record.get("shed") is not None:
            return True
        if record.get("verdict") == "error" or record.get("op") == "invalid":
            return True
        total_ms = record.get("total_ms")
        return isinstance(total_ms, (int, float)) and total_ms >= self.slow_ms

    def record(
        self, record: dict[str, Any], trace: dict[str, Any] | None = None
    ) -> None:
        """Append one record (plus its trace, if the policy retains it)."""
        entry = dict(record)
        retained = trace is not None and self.retains_trace(record)
        if retained:
            entry["trace"] = trace
        with self._lock:
            self._entries.append(entry)
            self.recorded_total += 1
            if retained:
                self.retained_traces += 1

    def entries(self, last: int | None = None) -> list[dict[str, Any]]:
        """The newest *last* entries (all of them by default), oldest first."""
        with self._lock:
            snapshot = list(self._entries)
        if last is not None:
            snapshot = snapshot[-last:]
        return snapshot

    def dump(self, last: int | None = None) -> dict[str, Any]:
        """JSON-ready dump: the ``debug`` verb's (and drain dump's) body."""
        return {
            "schema": FLIGHT_SCHEMA,
            "capacity": self.capacity,
            "slow_ms": self.slow_ms,
            "recorded_total": self.recorded_total,
            "retained_traces": self.retained_traces,
            "entries": self.entries(last),
        }

    def dump_to_file(self, path: str) -> str:
        """Write the dump as JSON; returns the path (the drain hook)."""
        pathlib.Path(path).write_text(
            json.dumps(self.dump(), indent=2, sort_keys=True, default=str)
            + "\n"
        )
        return str(path)


class Sampler:
    """Deterministic 1-in-N request sampling for live tracing.

    ``rate`` is the sampled fraction in [0, 1].  The implementation is
    stride-based rather than random — every ``round(1/rate)``-th
    request is sampled, starting with the first — so tests and smoke
    scripts can predict exactly which requests carry span trees, and a
    replayed workload samples the same positions every time.  Not
    thread-safe by design: the server samples on the event loop.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be within [0, 1], not {rate}")
        self.rate = rate
        self._stride = 0 if rate <= 0.0 else max(1, round(1.0 / rate))
        self._seen = 0

    def sample(self) -> bool:
        """Whether *this* request is sampled (advances the stride)."""
        if self._stride == 0:
            return False
        position = self._seen
        self._seen += 1
        return position % self._stride == 0


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Operator configuration for one :class:`Telemetry` instance.

    Attributes:
        access_log: NDJSON access-log path (None = no log).
        slow_ms: flight-recorder slow threshold — requests at or above
            it retain their span trees.
        sample_rate: fraction of requests traced live ([0, 1]; 0 = off).
        flight_capacity: ring-buffer size of the flight recorder.
        log_queue_size: bound on the access-log writer's queue.
        profile_top: hotspot rows the ``metrics`` verb exposes.
    """

    access_log: str | None = None
    slow_ms: float = 250.0
    sample_rate: float = 0.0
    flight_capacity: int = 256
    log_queue_size: int = 1024
    profile_top: int = 15

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be within [0, 1], not {self.sample_rate}"
            )
        if self.slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        if self.flight_capacity < 1:
            raise ValueError("flight_capacity must be >= 1")


class Telemetry:
    """The serving layer's telemetry fan-out: log + ring + profile.

    One ``observe(record, trace)`` per served frame; the facade routes
    the record to the access log (if configured), the flight recorder
    (always), and — when the frame carried a sampled span tree — the
    hotspot :class:`SpanProfile` surfaced by the ``metrics`` verb.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.log: AccessLogWriter | None = (
            AccessLogWriter(
                self.config.access_log, queue_size=self.config.log_queue_size
            )
            if self.config.access_log is not None
            else None
        )
        self.recorder = FlightRecorder(
            self.config.flight_capacity, slow_ms=self.config.slow_ms
        )
        self.sampler = Sampler(self.config.sample_rate)
        self.profile = SpanProfile()

    def sample(self) -> bool:
        """Sampling decision for the next request (counted when taken)."""
        sampled = self.sampler.sample()
        if sampled:
            _SAMPLED.inc()
        return sampled

    def observe(
        self, record: dict[str, Any], trace: dict[str, Any] | None = None
    ) -> None:
        """Account for one served frame (never raises into the server)."""
        if trace is not None:
            self.profile.add(trace)
        self.recorder.record(record, trace)
        if self.log is not None:
            self.log.write(record)

    def profile_snapshot(self) -> dict[str, Any]:
        """The hotspot aggregate of sampled traces (``metrics`` verb)."""
        return self.profile.to_dict(top=self.config.profile_top)

    def stats(self) -> dict[str, Any]:
        """Accounting block for the ``metrics`` verb / health surfaces."""
        out: dict[str, Any] = {
            "sample_rate": self.config.sample_rate,
            "sampled": self.profile.traces,
            "slow_ms": self.config.slow_ms,
            "flight_recorder": {
                "capacity": self.recorder.capacity,
                "recorded_total": self.recorder.recorded_total,
                "retained_traces": self.recorder.retained_traces,
                "size": len(self.recorder.entries()),
            },
            "access_log": self.log.stats() if self.log is not None else None,
        }
        return out

    def close(self) -> None:
        """Flush and stop the access-log writer (idempotent)."""
        if self.log is not None:
            self.log.close()


# --- worker telemetry repatriation ----------------------------------------------
#
# The process backend's metrics/cache counters move in the *worker*
# processes, invisible to the parent's registry — without repatriation,
# `repro top`, the `metrics` verb, and post-batch snapshots report zeros
# whenever `backend="process"`.  The contract (DESIGN.md "Concurrency
# architecture"): the worker brackets each item with a baseline/delta
# pair, the delta rides home on the item (plain dicts, pickle-friendly),
# and the parent merges it exactly once at future-completion time.


def worker_telemetry_baseline() -> dict[str, Any]:
    """Worker-side pre-item snapshot: metrics registry plus cache stats.

    Taken *after* any warm-start activity, at item start, so initializer
    checks never leak into per-item deltas.
    """
    return {"metrics": metrics_snapshot(), "cache": cache_stats()}


def worker_telemetry_delta(baseline: dict[str, Any]) -> dict[str, Any] | None:
    """What one item moved: the diff against its pre-item baseline.

    Returns ``None`` when the item touched nothing (e.g. a shed that
    never reached the engine), so idle items cost zero bytes on the
    wire.
    """
    metrics_part = snapshot_delta(baseline.get("metrics", {}), metrics_snapshot())
    cache_part: dict[str, dict[str, int]] = {}
    before_cache = baseline.get("cache", {})
    for name, cur in cache_stats().items():
        prev = before_cache.get(name, {})
        moved = {
            key: cur.get(key, 0) - prev.get(key, 0)
            for key in ("hits", "misses", "evictions")
        }
        moved = {key: value for key, value in moved.items() if value}
        if moved:
            cache_part[name] = moved
    if not metrics_part and not cache_part:
        return None
    return {"metrics": metrics_part, "cache": cache_part}


def merge_worker_telemetry(delta: dict[str, Any] | None) -> None:
    """Parent-side fold of one repatriated item delta (idempotent on
    ``None``; the caller guarantees each delta merges exactly once)."""
    if not delta:
        return
    merge_snapshot_delta(delta.get("metrics") or {})
    merge_stats_delta(delta.get("cache") or {})
