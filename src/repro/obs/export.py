"""Trace and metrics exporters: ndjson, flat dicts, the tree renderer.

Three consumers, three shapes:

- **ndjson** (:func:`trace_to_ndjson` / :func:`trace_from_ndjson`): one
  JSON object per span with ``span_id`` / ``parent_id`` links — the
  interchange format for offline tooling (``contain --trace-json``).
  The pair round-trips: parsing a dump reconstructs the span tree
  exactly (ids are depth-first positions, so dumps are deterministic).
- **flat dict** (:func:`flatten_trace`): path-keyed durations and
  counters (``"check/dispatch/emptiness-search": {...}``) for quick
  assertions and spreadsheet-style diffing; sibling spans with the same
  name are disambiguated by position (``name#2``).
- **tree text** (:func:`render_trace`): the ``--trace`` renderer —
  box-drawing tree with per-span duration (plus self-time — duration
  minus children, clamped at 0 — for spans with children), tags,
  counters, and events.

All trace exporters accept either a :class:`repro.obs.trace.Span` or
the ``to_dict()`` form of one (which is what ``details["trace"]``
holds).  Metrics get the matching pair
:func:`metrics_to_ndjson` / :func:`metrics_from_ndjson`, so bench runs
persist both telemetry kinds through one uniform ndjson idiom.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from .trace import Span

__all__ = [
    "trace_to_ndjson",
    "trace_from_ndjson",
    "metrics_to_ndjson",
    "metrics_from_ndjson",
    "flatten_trace",
    "render_trace",
]


def _as_dict(trace: "Span | dict[str, Any]") -> dict[str, Any]:
    return trace.to_dict() if isinstance(trace, Span) else trace


def trace_to_ndjson(trace: "Span | dict[str, Any]") -> str:
    """Serialize a span tree to newline-delimited JSON (one span/line).

    Spans are numbered depth-first (the root is 0) and linked through
    ``parent_id``; times stay relative to the root start, so two dumps
    of the same check are directly comparable.
    """
    lines: list[str] = []

    def emit(node: dict[str, Any], parent_id: int | None) -> None:
        span_id = len(lines)
        record = {
            "span_id": span_id,
            "parent_id": parent_id,
            **{key: value for key, value in node.items() if key != "children"},
        }
        lines.append(json.dumps(record, sort_keys=True, default=str))
        for child in node.get("children", ()):
            emit(child, span_id)

    emit(_as_dict(trace), None)
    return "\n".join(lines) + "\n"


def trace_from_ndjson(text: str) -> dict[str, Any]:
    """Parse an ndjson dump back into the nested ``to_dict()`` form.

    Inverse of :func:`trace_to_ndjson`: feeding its output back returns
    an equal tree (the round-trip property tested in ``tests/obs``).
    """
    nodes: dict[int, dict[str, Any]] = {}
    root: dict[str, Any] | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        span_id = record.pop("span_id")
        parent_id = record.pop("parent_id")
        record["children"] = []
        nodes[span_id] = record
        if parent_id is None:
            if root is not None:
                raise ValueError("ndjson trace has more than one root span")
            root = record
        else:
            try:
                nodes[parent_id]["children"].append(record)
            except KeyError:
                raise ValueError(
                    f"span {span_id} references unknown parent {parent_id}"
                ) from None
    if root is None:
        raise ValueError("ndjson trace has no root span")
    return root


def metrics_to_ndjson(snapshot: dict[str, dict[str, Any]] | None = None) -> str:
    """Serialize a metrics snapshot to ndjson (one instrument per line).

    With no argument, snapshots the default registry
    (:func:`repro.obs.metrics.metrics_snapshot`).  Each line carries the
    instrument's name plus its snapshot fields; lines are name-sorted,
    so dumps of equal snapshots are byte-identical.
    """
    if snapshot is None:
        from .metrics import metrics_snapshot

        snapshot = metrics_snapshot()
    lines = [
        json.dumps({"name": name, **data}, sort_keys=True)
        for name, data in sorted(snapshot.items())
    ]
    return "\n".join(lines) + "\n" if lines else ""


def metrics_from_ndjson(text: str) -> dict[str, dict[str, Any]]:
    """Parse a metrics ndjson dump back into the snapshot dict form.

    Inverse of :func:`metrics_to_ndjson`: the round-trip returns an
    equal snapshot.  Duplicate or missing names are malformed dumps.
    """
    snapshot: dict[str, dict[str, Any]] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        name = record.pop("name", None)
        if not isinstance(name, str):
            raise ValueError(f"metrics ndjson line missing a name: {line!r}")
        if name in snapshot:
            raise ValueError(f"metrics ndjson repeats instrument {name!r}")
        snapshot[name] = record
    return snapshot


def flatten_trace(trace: "Span | dict[str, Any]") -> dict[str, dict[str, Any]]:
    """Path-keyed summary: ``{"a/b/c": {duration_ms, tags, counters}}``.

    Repeated sibling names get ``#k`` suffixes (second occurrence and
    later), so every span owns a unique key.
    """
    out: dict[str, dict[str, Any]] = {}

    def visit(node: dict[str, Any], prefix: str) -> None:
        path = f"{prefix}/{node['name']}" if prefix else node["name"]
        if path in out:
            ordinal = 2
            while f"{path}#{ordinal}" in out:
                ordinal += 1
            path = f"{path}#{ordinal}"
        entry: dict[str, Any] = {"duration_ms": node.get("duration_ms", 0.0)}
        if node.get("tags"):
            entry["tags"] = dict(node["tags"])
        if node.get("counters"):
            entry["counters"] = dict(node["counters"])
        out[path] = entry
        for child in node.get("children", ()):
            visit(child, path)

    visit(_as_dict(trace), "")
    return out


def _format_extras(node: dict[str, Any]) -> str:
    parts: list[str] = []
    for key, value in (node.get("tags") or {}).items():
        parts.append(f"{key}={value}")
    for key, value in (node.get("counters") or {}).items():
        rendered = f"{value:g}" if isinstance(value, float) else str(value)
        parts.append(f"{key}={rendered}")
    return f"  [{', '.join(parts)}]" if parts else ""


def _self_ms(node: dict[str, Any]) -> float:
    """Span time not covered by children (clamped at 0 — clock jitter
    can make children sum past their parent)."""
    duration = node.get("duration_ms", 0.0) or 0.0
    children = sum(
        child.get("duration_ms", 0.0) or 0.0
        for child in node.get("children", ())
    )
    return max(0.0, duration - children)


def _render_lines(
    node: dict[str, Any], indent: str, is_last: bool, is_root: bool
) -> Iterator[str]:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    duration = node.get("duration_ms", 0.0)
    self_part = (
        f" (self {_self_ms(node):.2f} ms)" if node.get("children") else ""
    )
    yield (
        f"{indent}{connector}{node['name']}  {duration:.2f} ms"
        f"{self_part}{_format_extras(node)}"
    )
    child_indent = indent if is_root else indent + ("   " if is_last else "│  ")
    for event in node.get("events", ()):
        extras = {
            key: value
            for key, value in event.items()
            if key not in ("name", "at_ms")
        }
        detail = f" {extras}" if extras else ""
        yield f"{child_indent}· {event['name']} @ {event['at_ms']:.2f} ms{detail}"
    children = node.get("children", ())
    for position, child in enumerate(children):
        yield from _render_lines(
            child, child_indent, position == len(children) - 1, False
        )


def render_trace(trace: "Span | dict[str, Any]") -> str:
    """The human tree view behind ``contain --trace`` (one span/line)."""
    return "\n".join(_render_lines(_as_dict(trace), "", True, True)) + "\n"
