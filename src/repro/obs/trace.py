"""Nested-span tracing for the containment pipelines (zero-dependency).

A :class:`Tracer` records a tree of :class:`Span` objects — one per
pipeline stage (parse/translate, fold, complement, product, emptiness
search, expansion loop) — each carrying a monotonic start/end time,
free-form tags, accumulated counters, and point events (cache hits,
budget exhaustion).  The API is a context manager::

    with tracer.span("determinize", states=nfa.num_states) as sp:
        ...
        sp.count("subsets", len(table))

Pay-for-what-you-use contract (the tentpole requirement): tracing off
must cost (nearly) nothing.  Three mechanisms enforce it:

- every instrumented signature defaults to ``tracer=None``; hot kernels
  guard with a plain ``if tracer is not None`` (one pointer test);
- stage-level code uses :func:`maybe_span`, which returns a shared
  no-op scope without allocating when the tracer is ``None`` or null;
- :class:`NullTracer` (singleton :data:`NULL_TRACER`) implements the
  whole surface as no-ops, so code handed a tracer unconditionally
  still works.  Its ``is_active`` is ``False`` for explicit guards.

Spans always close, including on exception unwinds (``BudgetExhausted``
escaping a kernel still produces a well-formed tree, with the failing
span tagged ``error``).  The clock is :func:`time.perf_counter`;
exported times are milliseconds relative to the root span's start, so
dumps are machine-independent and diffable.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "maybe_span",
]


class Span:
    """One timed stage: a node of the trace tree.

    Attributes:
        name: stage name (see the span taxonomy in DESIGN.md §8).
        tags: free-form labels fixed at creation or via :meth:`annotate`.
        counters: accumulated numeric facts (:meth:`count`).
        events: point-in-time occurrences with their offset from the
            span start (cache outcomes, budget exhaustion).
        children: sub-stages, in execution order.
        start / end: raw :func:`time.perf_counter` seconds; ``end`` is
            ``None`` while the span is open.
    """

    __slots__ = ("name", "tags", "start", "end", "counters", "events", "children")

    def __init__(self, name: str, tags: dict[str, Any] | None = None) -> None:
        self.name = name
        self.tags: dict[str, Any] = tags if tags is not None else {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.counters: dict[str, float] = {}
        self.events: list[dict[str, Any]] = []
        self.children: list[Span] = []

    # -- recording -------------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        """Accumulate *amount* onto this span's counter *name*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def annotate(self, **tags: Any) -> None:
        """Attach (or overwrite) tags on this span."""
        self.tags.update(tags)

    def event(self, name: str, **data: Any) -> None:
        """Record a point event at the current time offset."""
        self.events.append(
            {"name": name, "at_ms": (time.perf_counter() - self.start) * 1000.0, **data}
        )

    def close(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    # -- reading ---------------------------------------------------------------

    @property
    def duration_ms(self) -> float:
        """Elapsed milliseconds (up to now, while the span is open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return (end - self.start) * 1000.0

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant-or-self span named *name* (pre-order)."""
        return next((span for span in self.walk() if span.name == name), None)

    def to_dict(self, origin: float | None = None) -> dict[str, Any]:
        """JSON-ready tree; times in ms relative to *origin* (root start)."""
        base = self.start if origin is None else origin
        out: dict[str, Any] = {
            "name": self.name,
            "start_ms": round((self.start - base) * 1000.0, 4),
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.events:
            out["events"] = [
                {**event, "at_ms": round(event["at_ms"], 4)} for event in self.events
            ]
        out["children"] = [child.to_dict(base) for child in self.children]
        return out


class _SpanScope:
    """The ``with`` handle produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.annotate(error=exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Builds a span tree from nested :meth:`span` scopes.

    Spans opened while another is open become its children; with an
    empty stack they become roots (normally there is exactly one root —
    the engine's ``check_containment`` span — and :attr:`root` exposes
    it).  Not thread-safe: one tracer belongs to one check.
    """

    is_active = True

    __slots__ = ("roots", "_stack")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **tags: Any) -> _SpanScope:
        """Open a child span of the current one (context manager)."""
        span = Span(name, tags or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanScope(self, span)

    def _pop(self, span: Span) -> None:
        span.close()
        # Close any deeper spans left open by a non-local exit; the
        # stack discipline of `with` makes this a no-op normally.
        while self._stack:
            top = self._stack.pop()
            top.close()
            if top is span:
                break

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def count(self, name: str, amount: float = 1) -> None:
        """Counter on the current span (no-op with no open span)."""
        if self._stack:
            self._stack[-1].count(name, amount)

    def annotate(self, **tags: Any) -> None:
        """Tags on the current span (no-op with no open span)."""
        if self._stack:
            self._stack[-1].annotate(**tags)

    def event(self, name: str, **data: Any) -> None:
        """Point event on the current span (no-op with no open span)."""
        if self._stack:
            self._stack[-1].event(name, **data)

    @property
    def root(self) -> Span | None:
        """The first root span (the whole check), or None if none opened."""
        return self.roots[0] if self.roots else None

    def to_dict(self) -> dict[str, Any] | None:
        """The root span's tree as a JSON-ready dict (None when empty)."""
        root = self.root
        return root.to_dict() if root is not None else None


class _NullSpan:
    """Inert span: accepts the whole recording surface, stores nothing."""

    __slots__ = ()

    name = "null"
    tags: dict[str, Any] = {}
    counters: dict[str, float] = {}
    events: list = []
    children: list = []
    duration_ms = 0.0

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def annotate(self, **tags: Any) -> None:
        pass

    def event(self, name: str, **data: Any) -> None:
        pass


class _NullScope:
    """Shared no-op ``with`` handle (never allocates per call)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SCOPE = _NullScope()


class NullTracer:
    """The do-nothing tracer (default everywhere; see module docstring)."""

    is_active = False

    __slots__ = ()

    roots: list = []
    root = None
    current = None

    def span(self, name: str, **tags: Any) -> _NullScope:
        return _NULL_SCOPE

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def annotate(self, **tags: Any) -> None:
        pass

    def event(self, name: str, **data: Any) -> None:
        pass

    def to_dict(self) -> None:
        return None


#: The process-wide null tracer (stateless, so sharing is safe).
NULL_TRACER = NullTracer()


def as_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument (None becomes the null one)."""
    return NULL_TRACER if tracer is None else tracer


def maybe_span(
    tracer: "Tracer | NullTracer | None", name: str, **tags: Any
):
    """``tracer.span(...)`` that is near-free when tracing is off.

    The stage-boundary idiom: ``with maybe_span(tracer, "fold"):``.
    With ``tracer`` None (or null) this returns the shared no-op scope
    without allocating a span or touching the tag kwargs.
    """
    if tracer is None or not tracer.is_active:
        return _NULL_SCOPE
    return tracer.span(name, **tags)
