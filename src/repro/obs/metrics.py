"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The aggregate side of observability — where traces answer "what did
*this* check do", metrics answer "what has the process been doing":
how many checks per query class, the verdict mix, the latency
distribution.  :func:`metrics_snapshot` is the machine-readable dump,
deliberately shaped like :func:`repro.cache.cache_stats`.

Design (mirrors the cache layer's conventions):

- instruments live in a :class:`MetricsRegistry`; the module-level
  :data:`REGISTRY` is the process default, with :func:`counter` /
  :func:`gauge` / :func:`histogram` as get-or-create accessors;
- accessors return *stable objects*, so hot call sites hoist them to
  module level once and pay a bare attribute increment per event
  (``_CHECKS.inc()``), never a registry lookup;
- :func:`reset_metrics` zeroes values **in place** — hoisted handles
  stay valid across resets (tests and benchmarks rely on this);
- histogram buckets are fixed at creation (cumulative upper bounds,
  Prometheus-style, with a ``+Inf`` catch-all), so snapshots from
  different processes aggregate by simple addition;
- instruments are **thread-safe**: each carries a lock taken around
  every mutation (and around multi-field histogram reads), so counter
  sums stay exact under the batch layer's worker pools.  Registry
  get-or-create is likewise locked, so two threads asking for the same
  name always receive the same instrument.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS_MS",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "reset_metrics",
    "snapshot_delta",
    "merge_snapshot_delta",
]

#: Default histogram boundaries, tuned for check latencies in ms
#: (sub-ms cache hits up to multi-second escalation runs).
DEFAULT_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (sizes, in-flight work); thread-safe."""

    __slots__ = ("name", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary cumulative histogram (plus sum/count/min/max).

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]``; the
    final slot is the ``+Inf`` catch-all.  Boundaries are fixed at
    creation so snapshots are mergeable across processes.
    """

    __slots__ = (
        "name", "boundaries", "bucket_counts", "count", "total", "min", "max",
        "_lock",
    )

    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS_MS) -> None:
        self.name = name
        self.boundaries = tuple(sorted(set(buckets)))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self._lock = threading.Lock()
        self.reset()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.boundaries) + 1)
            self.count = 0
            self.total = 0.0
            self.min: float | None = None
            self.max: float | None = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Upper bucket boundary covering quantile *q* (None when empty).

        The usual histogram-quantile estimate: the smallest boundary
        whose cumulative count reaches ``q * count``.  Observations in
        the ``+Inf`` bucket report the largest finite boundary.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            if not self.count:
                return None
            target = q * self.count
            cumulative = 0
            for boundary, bucket in zip(self.boundaries, self.bucket_counts):
                cumulative += bucket
                if cumulative >= target:
                    return boundary
            return self.boundaries[-1]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            cumulative: dict[str, int] = {}
            running = 0
            for boundary, bucket in zip(self.boundaries, self.bucket_counts):
                running += bucket
                cumulative[repr(boundary)] = running
            cumulative["+Inf"] = self.count
            return {
                "type": self.kind,
                "count": self.count,
                "sum": round(self.total, 6),
                "min": self.min,
                "max": self.max,
                "mean": round(self.mean, 6),
                "buckets": cumulative,
            }

    def merge_delta(
        self,
        count: int,
        total: float,
        minimum: float | None = None,
        maximum: float | None = None,
        buckets: dict[str, int] | None = None,
    ) -> None:
        """Fold another process's observation window into this histogram.

        ``buckets`` uses the snapshot wire shape — *cumulative* counts
        keyed by ``repr(boundary)`` plus a ``"+Inf"`` catch-all — which
        is exactly what subtracting two :meth:`snapshot` payloads
        yields (cumulative deltas are still cumulative).  A boundary
        this histogram does not have lands in the covering bucket, so
        merging never loses observations even across boundary drift.
        ``minimum``/``maximum`` are folded with min/max; a worker that
        reports lifetime bounds can only widen the range, never shrink
        it.
        """
        if count <= 0:
            return
        with self._lock:
            self.count += count
            self.total += total
            if minimum is not None and (self.min is None or minimum < self.min):
                self.min = minimum
            if maximum is not None and (self.max is None or maximum > self.max):
                self.max = maximum
            if not buckets:
                # No bucket detail: everything lands in the catch-all.
                self.bucket_counts[-1] += count
                return
            running = 0
            for key in sorted(
                buckets, key=lambda k: float("inf") if k == "+Inf" else float(k)
            ):
                increment = buckets[key] - running
                running = buckets[key]
                if increment <= 0:
                    continue
                if key == "+Inf":
                    index = len(self.boundaries)
                else:
                    index = bisect.bisect_left(self.boundaries, float(key))
                self.bucket_counts[index] += increment


class MetricsRegistry:
    """A named collection of instruments (one per process by default)."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as a {instrument.kind}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS_MS
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, buckets), "histogram")

    def snapshot(self, prefix: str | None = None) -> dict[str, dict[str, Any]]:
        """Machine-readable dump of every instrument, name-sorted.

        ``prefix`` restricts the dump to instruments whose name starts
        with it (e.g. ``"serve."`` for the serving layer's ``metrics``
        control verb) — filtering happens here, under the registry
        lock, so callers never iterate a mutating table.
        """
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: instruments[name].snapshot()
            for name in sorted(instruments)
            if prefix is None or name.startswith(prefix)
        }

    def reset(self) -> None:
        """Zero every instrument in place (hoisted handles stay valid)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


#: The process-default registry (what the engine and CLI report from).
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Iterable[float] = DEFAULT_BUCKETS_MS) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, buckets)


def metrics_snapshot(prefix: str | None = None) -> dict[str, dict[str, Any]]:
    """Snapshot of the default registry (akin to ``cache_stats()``)."""
    return REGISTRY.snapshot(prefix)


def reset_metrics() -> None:
    """Zero the default registry in place (tests/benchmarks)."""
    REGISTRY.reset()


def snapshot_delta(
    before: dict[str, dict[str, Any]], after: dict[str, dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    """The numeric difference between two :func:`metrics_snapshot` dumps.

    The worker side of telemetry repatriation (DESIGN.md "Concurrency
    architecture"): a process-pool worker snapshots its registry before
    and after one item and ships the delta back with the result, so the
    parent can :func:`merge_snapshot_delta` it and report true figures.

    - **Counters** carry the value increment (zero increments are
      dropped — the common case is a handful of touched instruments).
    - **Histograms** carry the window's ``count``/``sum`` plus the
      cumulative-bucket deltas (still cumulative, still mergeable by
      addition) and the worker's ``min``/``max`` as range bounds.
    - **Gauges** are skipped: they are point-in-time values of *that*
      process (queue depths, pool sizes) and adding them across
      processes would be nonsense.

    Both payloads must come from the same process; instruments present
    only in ``before`` (impossible without a reset) are ignored.
    """
    delta: dict[str, dict[str, Any]] = {}
    for name, cur in after.items():
        kind = cur.get("type")
        prev = before.get(name, {})
        if kind == "counter":
            increment = cur.get("value", 0) - prev.get("value", 0)
            if increment > 0:
                delta[name] = {"type": "counter", "value": increment}
        elif kind == "histogram":
            count = cur.get("count", 0) - prev.get("count", 0)
            if count <= 0:
                continue
            prev_buckets = prev.get("buckets", {})
            buckets = {
                key: value - prev_buckets.get(key, 0)
                for key, value in cur.get("buckets", {}).items()
            }
            delta[name] = {
                "type": "histogram",
                "count": count,
                "sum": round(cur.get("sum", 0.0) - prev.get("sum", 0.0), 6),
                "min": cur.get("min"),
                "max": cur.get("max"),
                "buckets": {k: v for k, v in buckets.items() if v},
            }
    return delta


def merge_snapshot_delta(
    delta: dict[str, dict[str, Any]], registry: MetricsRegistry | None = None
) -> None:
    """Fold a :func:`snapshot_delta` payload into a registry (default:
    the process registry).

    Instruments are get-or-created, so a worker-only metric still shows
    up in the parent; a name that exists with a mismatched kind raises
    (the registry's usual contract) rather than silently misfiling.
    """
    target = REGISTRY if registry is None else registry
    for name, data in delta.items():
        kind = data.get("type")
        if kind == "counter":
            increment = data.get("value", 0)
            if increment > 0:
                target.counter(name).inc(increment)
        elif kind == "histogram":
            target.histogram(name).merge_delta(
                int(data.get("count", 0)),
                float(data.get("sum", 0.0)),
                data.get("min"),
                data.get("max"),
                data.get("buckets"),
            )
