"""Span-profile aggregation: many traces in, one hotspot table out.

A single trace (:mod:`repro.obs.trace`) answers "where did *this* check
spend its time"; the performance observatory needs the same answer for
a *population* of checks — the bench harness runs an experiment dozens
of times and wants one path-keyed profile saying which stages are hot.
:class:`SpanProfile` is that accumulator:

- **keys** are span-name paths from the root (``"check-containment/
  fold"``).  Same-named siblings merge (unlike
  :func:`repro.obs.export.flatten_trace`, which disambiguates them —
  flattening preserves a tree, profiling aggregates one).
- **recursive spans fold**: a span whose name already appears among its
  ancestors is charged to the *nearest* ancestor's key, so recursion
  of any depth yields one stable key instead of an unbounded family
  (``a/b/b/b`` profiles as ``a/b``), and its cumulative time is not
  double-counted (only top-most occurrences of a key add to
  ``cum_ms`` and the per-call samples).
- **self time** is a span's duration minus its direct children's
  (clamped at zero — clock jitter can make children sum slightly past
  the parent), summed over every occurrence.  Self times partition the
  root's duration, so the profile's self column is where optimization
  effort should go.
- **percentiles** (p50/p95) are nearest-rank over the per-call
  durations of top-most occurrences.

The aggregate attaches to each recorded bench run (``profile`` section
of ``BENCH_<runid>.json``) and renders as a top-N table via
:func:`render_profile` (the ``repro bench profile`` command).
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from .trace import Span

__all__ = [
    "SpanProfile",
    "aggregate_traces",
    "render_profile",
]


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list (0 if empty)."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


class _Entry:
    __slots__ = ("path", "calls", "cum_ms", "self_ms", "samples")

    def __init__(self, path: str) -> None:
        self.path = path
        self.calls = 0
        self.cum_ms = 0.0
        self.self_ms = 0.0
        self.samples: list[float] = []  # per-call durations, top-most only

    def row(self) -> dict[str, Any]:
        ordered = sorted(self.samples)
        return {
            "path": self.path,
            "calls": self.calls,
            "cum_ms": round(self.cum_ms, 4),
            "self_ms": round(self.self_ms, 4),
            "p50_ms": round(_percentile(ordered, 0.50), 4),
            "p95_ms": round(_percentile(ordered, 0.95), 4),
            "max_ms": round(max(ordered, default=0.0), 4),
        }


class SpanProfile:
    """Accumulates span trees into a path-keyed hotspot profile."""

    def __init__(self) -> None:
        self._entries: dict[str, _Entry] = {}
        self.traces = 0

    # -- recording -------------------------------------------------------------

    def add(self, trace: "Span | dict[str, Any]") -> None:
        """Merge one trace (a Span or its ``to_dict()`` form) into the profile."""
        root = trace.to_dict() if isinstance(trace, Span) else trace
        self.traces += 1
        self._visit(root, "")

    def add_many(self, traces: Iterable["Span | dict[str, Any]"]) -> None:
        for trace in traces:
            self.add(trace)

    def _visit(self, node: dict[str, Any], parent_key: str) -> None:
        name = node["name"]
        segments = parent_key.split("/") if parent_key else []
        if name in segments:
            # Recursive frame: charge the nearest ancestor with this name
            # (stable key, and cum_ms counted once at the top-most frame).
            cut = len(segments) - 1 - segments[::-1].index(name)
            key = "/".join(segments[: cut + 1])
            top_most = False
        else:
            key = f"{parent_key}/{name}" if parent_key else name
            top_most = True
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry(key)
        duration = float(node.get("duration_ms", 0.0))
        children = node.get("children", ())
        child_total = sum(float(c.get("duration_ms", 0.0)) for c in children)
        entry.calls += 1
        entry.self_ms += max(0.0, duration - child_total)
        if top_most:
            entry.cum_ms += duration
            entry.samples.append(duration)
        for child in children:
            self._visit(child, key)

    # -- reading ---------------------------------------------------------------

    def rows(self, top: int | None = None) -> list[dict[str, Any]]:
        """Profile rows, hottest self-time first (ties break on path)."""
        ordered = sorted(
            (entry.row() for entry in self._entries.values()),
            key=lambda row: (-row["self_ms"], row["path"]),
        )
        return ordered[:top] if top is not None else ordered

    def to_dict(self, top: int | None = None) -> dict[str, Any]:
        """JSON-ready form: the shape stored in ``BENCH_<runid>.json``."""
        return {"traces": self.traces, "entries": self.rows(top)}


def aggregate_traces(traces: Iterable["Span | dict[str, Any]"]) -> SpanProfile:
    """Build a :class:`SpanProfile` from an iterable of traces."""
    profile = SpanProfile()
    profile.add_many(traces)
    return profile


_COLUMNS = ("path", "calls", "cum_ms", "self_ms", "p50_ms", "p95_ms", "max_ms")


def render_profile(
    profile: "SpanProfile | dict[str, Any]", top: int = 15
) -> str:
    """Top-N hotspot table (accepts a profile or its ``to_dict()`` form)."""
    data = profile.to_dict(top) if isinstance(profile, SpanProfile) else profile
    rows = data.get("entries", [])[:top]
    traces = data.get("traces", 0)
    rendered = [
        [
            str(row["path"]),
            str(row["calls"]),
            *(f"{float(row[col]):.3f}" for col in _COLUMNS[2:]),
        ]
        for row in rows
    ]
    headers = ["span path", "calls", "cum ms", "self ms", "p50 ms", "p95 ms", "max ms"]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"hotspot profile ({traces} traces, top {len(rendered)} by self time)"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
