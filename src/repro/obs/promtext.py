"""Prometheus text exposition of the metrics registry.

Scrape-based monitoring wants the process's instruments in the
Prometheus text format (`text/plain; version=0.0.4`): one `# TYPE`
header per metric family, counters and gauges as single samples,
histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
`_count`.  :class:`repro.obs.metrics.Histogram` already stores
cumulative fixed-boundary buckets, so the mapping is direct — no
re-binning, snapshots taken here aggregate across processes exactly as
Prometheus expects.

Two consumers:

- ``repro serve --prom-port N`` exposes a minimal HTTP endpoint
  answering every request with :func:`http_exposition` (the server
  side lives in :mod:`repro.serve.server`; this module renders bytes);
- ``repro metrics --prom`` renders a snapshot — the local registry's,
  or one fetched from a live server's ``metrics`` verb.

Metric names sanitize dots to underscores (``serve.latency_ms`` →
``serve_latency_ms``); the original name is kept in a ``# HELP`` line
so dashboards can map back.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

__all__ = [
    "CONTENT_TYPE",
    "metric_name",
    "render_prometheus",
    "http_exposition",
]

#: The exposition-format content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """Sanitize an instrument name into a valid Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: Any) -> str:
    """Prometheus sample value: integers bare, floats with repr precision."""
    if value is None:
        return "0"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Mapping[str, Mapping[str, Any]] | None = None,
) -> str:
    """Render a metrics snapshot in the Prometheus text format.

    *snapshot* is the :func:`repro.obs.metrics.metrics_snapshot` shape
    (``{name: {"type": ..., ...}}``); None snapshots the default
    registry.  Families render name-sorted, so equal snapshots expose
    byte-identical bodies.
    """
    if snapshot is None:
        from .metrics import metrics_snapshot

        snapshot = metrics_snapshot()
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        family = metric_name(name)
        lines.append(f"# HELP {family} {name}")
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {family} {kind}")
            lines.append(f"{family} {_format_value(data.get('value', 0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {family} histogram")
            buckets = data.get("buckets", {})
            for upper, cumulative in buckets.items():
                lines.append(
                    f'{family}_bucket{{le="{upper}"}} '
                    f"{_format_value(cumulative)}"
                )
            if "+Inf" not in buckets:
                lines.append(
                    f'{family}_bucket{{le="+Inf"}} '
                    f"{_format_value(data.get('count', 0))}"
                )
            lines.append(f"{family}_sum {_format_value(data.get('sum', 0.0))}")
            lines.append(f"{family}_count {_format_value(data.get('count', 0))}")
        else:
            # Unknown instrument kinds expose as untyped gauges rather
            # than silently vanishing from the scrape.
            lines.append(f"# TYPE {family} untyped")
            lines.append(f"{family} {_format_value(data.get('value', 0))}")
    return "\n".join(lines) + "\n" if lines else ""


def http_exposition(
    snapshot: Mapping[str, Mapping[str, Any]] | None = None,
) -> bytes:
    """A complete HTTP/1.0 response carrying the exposition body.

    Enough HTTP for a Prometheus scrape (status line, content type,
    length, connection close) without pulling in an HTTP framework —
    the serving layer writes these bytes and closes the socket.
    """
    body = render_prometheus(snapshot).encode("utf-8")
    head = (
        "HTTP/1.0 200 OK\r\n"
        f"Content-Type: {CONTENT_TYPE}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body
