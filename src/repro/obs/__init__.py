"""Observability: span tracing, metrics, and exporters (zero-dependency).

The engine's decisions — which procedure ran, where the states and
milliseconds went, whether the cache or the budget intervened — are
invisible from a bare :class:`repro.report.ContainmentResult`.  This
package makes them inspectable:

- :mod:`repro.obs.trace` — nested spans with monotonic timings,
  counters, and tags (``with tracer.span("determinize", states=n):``).
  The default is the no-op :data:`repro.obs.trace.NULL_TRACER`;
  instrumented code pays a single ``None`` test when tracing is off.
- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and fixed-bucket histograms; :func:`metrics_snapshot` is the
  machine-readable dump, akin to :func:`repro.cache.cache_stats`.
- :mod:`repro.obs.export` — ndjson span and metrics dumps, flat dicts,
  and the human tree renderer behind the CLI's ``contain --trace``.
- :mod:`repro.obs.profile` — span-profile aggregation: many traces
  merged into one path-keyed hotspot table (calls, cum/self time,
  p50/p95).
- :mod:`repro.obs.perf` — the performance observatory: structured
  bench runs (``BENCH_<runid>.json``) and the run-over-run regression
  detector (exact series bit-for-bit, timing series MAD-gated).
- :mod:`repro.obs.telemetry` — operational telemetry for the serving
  layer: the request-scoped NDJSON access log (bounded, non-blocking
  writer), the flight recorder (ring buffer with span-tree retention
  for slow/shed/error requests), and deterministic trace sampling.
- :mod:`repro.obs.promtext` — Prometheus text exposition of any
  metrics snapshot (``repro serve --prom-port`` / ``repro metrics
  --prom``).
- :mod:`repro.obs.env` — the shared environment fingerprint reported
  by bench runs and the serving layer's ``health`` verb.

Entry points: ``check_containment(q1, q2, trace=True)`` returns the
span tree in ``details["trace"]`` (CLI: ``contain --trace`` /
``--trace-json``); ``repro bench run|compare|profile`` drives the
observatory.
"""

from .trace import NULL_TRACER, NullTracer, Span, Tracer, as_tracer, maybe_span
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    reset_metrics,
)
from .export import (
    flatten_trace,
    metrics_from_ndjson,
    metrics_to_ndjson,
    render_trace,
    trace_from_ndjson,
    trace_to_ndjson,
)
from .profile import SpanProfile, aggregate_traces, render_profile
from .env import environment_fingerprint
from .perf import (
    compare_runs,
    render_comparison,
    run_suite,
    validate_run,
    write_run,
)
from .promtext import http_exposition, render_prometheus
from .telemetry import (
    ACCESS_LOG_SCHEMA,
    AccessLogWriter,
    FlightRecorder,
    Sampler,
    Telemetry,
    TelemetryConfig,
    access_record,
    validate_access_record,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "as_tracer",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "reset_metrics",
    "flatten_trace",
    "render_trace",
    "trace_from_ndjson",
    "trace_to_ndjson",
    "metrics_from_ndjson",
    "metrics_to_ndjson",
    "SpanProfile",
    "aggregate_traces",
    "render_profile",
    "compare_runs",
    "environment_fingerprint",
    "render_comparison",
    "run_suite",
    "validate_run",
    "write_run",
    "http_exposition",
    "render_prometheus",
    "ACCESS_LOG_SCHEMA",
    "AccessLogWriter",
    "FlightRecorder",
    "Sampler",
    "Telemetry",
    "TelemetryConfig",
    "access_record",
    "validate_access_record",
]
