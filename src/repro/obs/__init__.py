"""Observability: span tracing, metrics, and exporters (zero-dependency).

The engine's decisions — which procedure ran, where the states and
milliseconds went, whether the cache or the budget intervened — are
invisible from a bare :class:`repro.report.ContainmentResult`.  This
package makes them inspectable:

- :mod:`repro.obs.trace` — nested spans with monotonic timings,
  counters, and tags (``with tracer.span("determinize", states=n):``).
  The default is the no-op :data:`repro.obs.trace.NULL_TRACER`;
  instrumented code pays a single ``None`` test when tracing is off.
- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and fixed-bucket histograms; :func:`metrics_snapshot` is the
  machine-readable dump, akin to :func:`repro.cache.cache_stats`.
- :mod:`repro.obs.export` — ndjson span dumps, flat dicts, and the
  human tree renderer behind the CLI's ``contain --trace``.

Entry point: ``check_containment(q1, q2, trace=True)`` returns the span
tree in ``details["trace"]``; the CLI flags ``--trace`` /
``--trace-json`` render or dump it.
"""

from .trace import NULL_TRACER, NullTracer, Span, Tracer, as_tracer, maybe_span
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_snapshot,
    reset_metrics,
)
from .export import flatten_trace, render_trace, trace_from_ndjson, trace_to_ndjson

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "as_tracer",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "metrics_snapshot",
    "reset_metrics",
    "flatten_trace",
    "render_trace",
    "trace_from_ndjson",
    "trace_to_ndjson",
]
