"""The environment fingerprint: where a run (or a server) happened.

One tiny module so every telemetry surface — bench run documents
(:mod:`repro.obs.perf`), the serving layer's ``health`` verb, access
logs — reports the *same* fingerprint instead of re-deriving its own
variant: python version/implementation, platform, machine, and the
short git commit (None outside a checkout).  Operators correlate a
metrics dump with a code version by comparing these fields, so the
shape must not drift between producers.
"""

from __future__ import annotations

import platform
import subprocess
from typing import Any

__all__ = ["environment_fingerprint"]


def environment_fingerprint() -> dict[str, Any]:
    """Where this run happened: python / platform / commit."""
    try:
        commit = (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "commit": commit,
    }
