"""The performance observatory: structured bench runs + regression gate.

The reproduction targets are *shapes* — state blow-ups and growth rates
from Lemmas 1-4 / Theorems 5-8 — and shapes regress silently when the
only record is a human-readable table.  This module makes each bench
run a machine-checkable document:

- :func:`run_suite` executes a registered experiment suite (``smoke``
  or ``full``) programmatically and returns one JSON-ready run
  document: per-experiment **exact structural series** (state counts,
  fold sizes, oracle agreement, cache outcomes, budget spend — values
  that must reproduce bit-for-bit on any machine) and **timing series**
  (best-of-k workloads summarized as median/MAD), plus an environment
  fingerprint, a metrics/cache snapshot, and an aggregated hotspot
  profile (:mod:`repro.obs.profile`) saying where the time went.
- :func:`write_run` persists the document as ``BENCH_<runid>.json``
  (the bench trajectory's native format).
- :func:`compare_runs` is the regression detector: against a committed
  baseline (``benchmarks/baseline.json``), exact series must match
  **bit-for-bit** (hard gate), while timing series fail only beyond a
  configurable MAD-based tolerance (soft gate — shared CI runners are
  noisy, so the CLI treats timing regressions as warnings unless
  ``--fail-on-timing``).

Exactness discipline: every experiment seeds its RNG, runs a fixed
workload in a fixed order, and reports only order-independent facts
(reachable-set sizes, verdicts, counts), so the exact payload is
identical across platforms and hash seeds.  Timing values never enter
the exact payload (``elapsed_ms`` is stripped from budget spend).

Regenerate the committed baseline after an intentional shape change::

    PYTHONPATH=src python -m repro bench run --suite smoke \\
        --out benchmarks/baseline.json
"""

from __future__ import annotations

import dataclasses
import json
import os
import statistics
import sys
import time
from typing import Any, Callable

# Re-exported here for backwards compatibility: the fingerprint now
# lives in repro.obs.env so the serving layer's health verb and the
# bench harness report the identical shape.
from .env import environment_fingerprint
from .metrics import metrics_snapshot, reset_metrics
from .profile import SpanProfile

__all__ = [
    "SCHEMA",
    "SUITES",
    "Experiment",
    "RunComparison",
    "experiments_for",
    "time_workload",
    "environment_fingerprint",
    "run_suite",
    "write_run",
    "validate_run",
    "compare_runs",
    "render_comparison",
]

#: Schema identifier stamped into (and required of) every run document.
SCHEMA = "repro-bench/1"

#: Known suite tiers: ``smoke`` is the CI-sized subset, ``full`` the sweep.
SUITES = ("smoke", "full")


# --- registry -------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One registered bench experiment.

    ``build(suite)`` performs the exact-series work and returns
    ``{"exact": <JSON-stable dict>, "timed": {name: thunk}}``; the
    harness times each thunk best-of-k afterwards.
    """

    id: str
    title: str
    suites: tuple[str, ...]
    build: Callable[[str], dict[str, Any]]


_EXPERIMENTS: list[Experiment] = []


def _experiment(id: str, title: str, suites: tuple[str, ...] = SUITES):
    def register(fn: Callable[[str], dict[str, Any]]) -> Callable:
        _EXPERIMENTS.append(Experiment(id, title, suites, fn))
        return fn

    return register


def experiments_for(suite: str) -> list[Experiment]:
    """The experiments of a suite, in registration (= execution) order."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; known suites: {SUITES}")
    return [spec for spec in _EXPERIMENTS if suite in spec.suites]


# --- timing ---------------------------------------------------------------------


def time_workload(fn: Callable[[], Any], repeats: int = 5) -> dict[str, Any]:
    """Run *fn* ``repeats`` times; report best/median/MAD over the samples.

    Median+MAD (median absolute deviation) is the robust pair: one
    scheduler hiccup shifts neither, unlike mean/stddev.  ``best_ms``
    is kept as the low-noise "speed of light" figure.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    median = statistics.median(samples)
    mad = statistics.median(abs(sample - median) for sample in samples)
    return {
        "reps": repeats,
        "best_ms": round(min(samples), 4),
        "median_ms": round(median, 4),
        "mad_ms": round(mad, 4),
        "samples_ms": [round(sample, 4) for sample in samples],
    }


# --- experiments ----------------------------------------------------------------
# Each build() reuses the same library calls the pytest benchmarks make
# (benchmarks/bench_e*.py), trimmed to suite-sized workloads.  Imports
# are local so `import repro.obs` stays light.


@_experiment("E1-oracle", "Lemma 1 pipeline vs brute-force word oracle")
def _exp_e01(suite: str) -> dict[str, Any]:
    import itertools
    import random

    from ..automata.regex import parse_regex, random_regex
    from ..rpq.containment import rpq_contained
    from ..rpq.rpq import RPQ

    alphabet = ("a", "b")
    atoms = ["a", "b", "a b", "a|b", "a*", "a+", "b a", "(a b)*", "a?"]
    if suite == "smoke":
        atoms, n_random = atoms[:6], 10
    else:
        n_random = 40
    rng = random.Random(1)
    pairs = [(parse_regex(x), parse_regex(y)) for x in atoms for y in atoms]
    pairs += [
        (random_regex(rng, alphabet, 3), random_regex(rng, alphabet, 3))
        for _ in range(n_random)
    ]

    def brute_force_contained(r1, r2, max_length=5) -> bool:
        n1, n2 = r1.to_nfa(), r2.to_nfa()
        for length in range(max_length + 1):
            for word in itertools.product(alphabet, repeat=length):
                if n1.accepts(word) and not n2.accepts(word):
                    return False
        return True

    consistent = inconsistent = positives = 0
    for r1, r2 in pairs:
        verdict = rpq_contained(RPQ(r1), RPQ(r2)).holds
        if verdict and not brute_force_contained(r1, r2):
            inconsistent += 1
        else:
            consistent += 1
        positives += verdict
    timed_pairs = pairs[:20]

    def check_pairs() -> None:
        for r1, r2 in timed_pairs:
            rpq_contained(RPQ(r1), RPQ(r2))

    return {
        "exact": {
            "pairs": len(pairs),
            "consistent": consistent,
            "inconsistent": inconsistent,
            "containments": positives,
        },
        "timed": {"rpq-containment-20pairs": check_pairs},
    }


@_experiment("E3-fold-size", "Lemma 3 fold-2NFA state counts vs bound")
def _exp_e03(suite: str) -> dict[str, Any]:
    import random

    from ..automata.alphabet import Alphabet
    from ..automata.dfa import reduce_nfa
    from ..automata.fold import fold_two_nfa, lemma3_state_bound
    from ..automata.regex import random_regex

    depths = (2, 3) if suite == "smoke" else (2, 3, 4, 5)
    rng = random.Random(5)
    series: list[list[int]] = []
    largest = None
    for sigma_size in (1, 2, 3):
        alphabet = tuple("abc"[:sigma_size])
        sigma_pm = Alphabet(alphabet).two_way
        for depth in depths:
            nfa = reduce_nfa(
                random_regex(rng, alphabet, depth, allow_inverse=True).to_nfa()
            )
            if nfa.num_states == 0:
                continue
            folded = fold_two_nfa(nfa, sigma_pm)
            series.append(
                [
                    sigma_size,
                    nfa.num_states,
                    folded.num_states,
                    lemma3_state_bound(nfa, sigma_pm),
                ]
            )
            largest = (nfa, sigma_pm)
    exact = {
        "series": series,
        "all_within_bound": all(row[2] <= row[3] for row in series),
        "fold_exactly_2n": all(row[2] == 2 * row[1] for row in series),
    }
    timed: dict[str, Callable[[], Any]] = {}
    if largest is not None:
        nfa, sigma_pm = largest

        def fold_largest() -> None:
            fold_two_nfa(nfa, sigma_pm)

        timed["fold-largest-nfa"] = fold_largest
    return {"exact": exact, "timed": timed}


@_experiment("E4-complement", "Lemma 4 complement blow-up vs Shepherdson")
def _exp_e04(suite: str) -> dict[str, Any]:
    from ..automata.alphabet import Alphabet
    from ..automata.complement import complement_two_nfa, lemma4_state_bound
    from ..automata.dfa import reduce_nfa
    from ..automata.fold import fold_two_nfa
    from ..automata.regex import parse_regex
    from ..automata.shepherdson import two_nfa_to_dfa

    family = ["p", "p p", "p p-"]
    if suite == "full":
        family.append("p? p")
    sigma_pm = Alphabet(("p",)).two_way
    series: list[list[Any]] = []
    timed_two = None
    for text in family:
        two = fold_two_nfa(reduce_nfa(parse_regex(text).to_nfa()), sigma_pm)
        lemma4 = complement_two_nfa(two, max_states=200_000)
        shepherdson = two_nfa_to_dfa(two, max_states=200_000)
        series.append(
            [
                text,
                two.num_states,
                lemma4.num_states,
                lemma4_state_bound(two),
                shepherdson.num_states,
            ]
        )
        timed_two = two

    def complement_largest() -> None:
        complement_two_nfa(timed_two, max_states=200_000)

    return {
        "exact": {
            "series": series,
            "all_within_bound": all(row[2] <= row[3] for row in series),
        },
        "timed": {"lemma4-complement-largest": complement_largest},
    }


@_experiment("engine-cache", "containment cache outcomes and hit accounting")
def _exp_cache(suite: str) -> dict[str, Any]:
    from ..automata.regex import parse_regex
    from ..cache import cache_stats, clear_caches
    from ..core.engine import check_containment
    from ..rpq.rpq import RPQ

    clear_caches()
    pairs = [("a a", "a+"), ("a+", "a a"), ("(a b)+", "(a b)*")]
    queries = [
        (RPQ(parse_regex(left)), RPQ(parse_regex(right))) for left, right in pairs
    ]
    outcomes: list[list[str]] = []
    for _ in range(2):  # cold pass then warm pass
        for q1, q2 in queries:
            result = check_containment(q1, q2)
            outcomes.append([result.verdict.value, result.details["cache"]])
    stats = cache_stats()["containment"]
    warm_q1, warm_q2 = queries[0]

    def warm_hit() -> None:
        check_containment(warm_q1, warm_q2)

    return {
        "exact": {
            "outcomes": outcomes,
            "containment_hits": stats["hits"],
            "containment_misses": stats["misses"],
        },
        "timed": {"engine-warm-hit": warm_hit},
    }


@_experiment("batch-scaling", "batch front door: worker-count scaling on E1 pairs")
def _exp_batch(suite: str) -> dict[str, Any]:
    import random

    from ..automata.regex import parse_regex, random_regex
    from ..cache import clear_caches
    from ..core.batch import check_containment_many, sequential_baseline
    from ..rpq.rpq import RPQ

    alphabet = ("a", "b")
    atoms = ["a", "b", "a b", "a|b", "a*", "a+"]
    n_random = 10 if suite == "smoke" else 40
    rng = random.Random(1)
    pairs = [
        (RPQ(parse_regex(x)), RPQ(parse_regex(y))) for x in atoms for y in atoms
    ]
    pairs += [
        (RPQ(random_regex(rng, alphabet, 3)), RPQ(random_regex(rng, alphabet, 3)))
        for _ in range(n_random)
    ]

    # Exact series: the differential oracle.  Concurrency may change
    # wall-clock, never answers — batch verdicts at workers ∈ {1, 4} on
    # both backends must equal the sequential loop's, bit-for-bit.
    expected = [result.verdict.value for result in sequential_baseline(pairs)]
    agreement: dict[str, bool] = {}
    for backend, workers in (("thread", 1), ("thread", 4), ("process", 4)):
        clear_caches()
        batch = check_containment_many(pairs, workers=workers, backend=backend)
        verdicts = [item.result.verdict.value for item in batch.items]
        agreement[f"{backend}-{workers}"] = verdicts == expected
    counts: dict[str, int] = {}
    for verdict in expected:
        counts[verdict] = counts.get(verdict, 0) + 1

    # Timed series: cold-cache wall-clock of the sequential loop vs the
    # thread pool, so the medians expose real scaling (or, on a single
    # core under the GIL, the honest absence of it — see EXPERIMENTS.md).
    def run_sequential() -> None:
        clear_caches()
        sequential_baseline(pairs)

    def run_thread_1() -> None:
        clear_caches()
        check_containment_many(pairs, workers=1, backend="thread")

    def run_thread_4() -> None:
        clear_caches()
        check_containment_many(pairs, workers=4, backend="thread")

    return {
        "exact": {
            "pairs": len(pairs),
            "agreement": agreement,
            "verdict_counts": counts,
        },
        "timed": {
            "batch-sequential": run_sequential,
            "batch-thread-1worker": run_thread_1,
            "batch-thread-4workers": run_thread_4,
        },
    }


class _PoisonPill:
    """Crash-isolation probe: unpickling one kills the worker process.

    Never constructed worker-side — ``__reduce__`` makes the *unpickle*
    the crash (``os._exit(1)`` at argument-deserialization time), which
    is the most hostile deterministic stand-in for a segfaulting
    worker the standard library allows.
    """

    def __reduce__(self):  # pragma: no cover - runs in the dying worker
        return (os._exit, (1,))


@_experiment("process-scaling", "process backend: agreement, crash isolation, scaling")
def _exp_process(suite: str) -> dict[str, Any]:
    import pathlib
    import random

    from ..automata.regex import parse_regex, random_regex
    from ..cache import clear_caches
    from ..core.batch import (
        ContainmentExecutor,
        check_containment_many,
        sequential_baseline,
    )
    from ..rpq.rpq import RPQ
    from ..serve.protocol import parse_workload

    alphabet = ("a", "b")
    atoms = ["a", "b", "a b", "a|b", "a*", "a+"]
    n_random = 10 if suite == "smoke" else 40
    rng = random.Random(1)
    pairs = [
        (RPQ(parse_regex(x)), RPQ(parse_regex(y))) for x in atoms for y in atoms
    ]
    pairs += [
        (RPQ(random_regex(rng, alphabet, 3)), RPQ(random_regex(rng, alphabet, 3)))
        for _ in range(n_random)
    ]

    # Exact series 1: the cross-backend differential oracle on the E1
    # pair family.  Process workers recompute behind a pickle boundary
    # with their own caches; the verdict list must still equal the
    # sequential loop's, bit-for-bit, at every worker count.
    expected = [result.verdict.value for result in sequential_baseline(pairs)]
    agreement: dict[str, bool] = {}
    for backend, workers in (("process", 1), ("process", 4)):
        clear_caches()
        batch = check_containment_many(pairs, workers=workers, backend=backend)
        verdicts = [item.result.verdict.value for item in batch.items]
        agreement[f"{backend}-{workers}"] = verdicts == expected

    # Exact series 2: the serving smoke workload replayed through both
    # pool substrates — thread-4 and process-4 must answer
    # benchmarks/workloads/batch_smoke.ndjson exactly alike.
    workload_path = (
        pathlib.Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "workloads"
        / "batch_smoke.ndjson"
    )
    parsed = parse_workload(workload_path.read_text())
    smoke_pairs = [(request.left, request.right) for request in parsed.requests]
    smoke_expected = [
        result.verdict.value for result in sequential_baseline(smoke_pairs)
    ]
    workload_agreement: dict[str, bool] = {}
    for backend, workers in (("thread", 1), ("thread", 4), ("process", 4)):
        clear_caches()
        batch = check_containment_many(
            smoke_pairs, workers=workers, backend=backend
        )
        verdicts = [item.result.verdict.value for item in batch.items]
        workload_agreement[f"{backend}-{workers}"] = verdicts == smoke_expected

    # Exact series 3: crash isolation.  A worker killed mid-batch (the
    # poison pill unpickles into ``os._exit(1)``) must cost exactly its
    # own item — an ERROR carrying ``details["error"]`` — while every
    # other item keeps its sequential verdict and the executor keeps
    # accepting work on a rebuilt pool.
    crash_pairs = list(pairs[:4])
    crash_pairs.insert(2, (_PoisonPill(), _PoisonPill()))
    clear_caches()
    crash_items = check_containment_many(
        crash_pairs, workers=2, backend="process"
    ).items
    survivors_expected = [
        result.verdict.value for result in sequential_baseline(pairs[:4])
    ]
    survivors = [
        item.result.verdict.value
        for index, item in enumerate(crash_items)
        if index != 2
    ]
    with ContainmentExecutor(workers=1, backend="process") as executor:
        executor.submit(_PoisonPill(), _PoisonPill()).result()
        after_crash = executor.submit(*pairs[0]).result()
    crash = {
        "poison_is_isolated_error": (
            crash_items[2].result.verdict.value == "error"
            and "error" in crash_items[2].result.details
        ),
        "survivors_match_sequential": survivors == survivors_expected,
        "accepts_after_crash": (
            after_crash.result.verdict.value == survivors_expected[0]
        ),
    }

    # Timed series: cold-cache process-pool wall-clock at 1 and 4
    # workers.  On a single core the 4-worker figure honestly shows
    # serialization overhead, not speedup — EXPERIMENTS.md A10 gates
    # the >=1.5x claim on the core count for exactly that reason.
    def run_process_1() -> None:
        clear_caches()
        check_containment_many(pairs, workers=1, backend="process")

    def run_process_4() -> None:
        clear_caches()
        check_containment_many(pairs, workers=4, backend="process")

    return {
        "exact": {
            "pairs": len(pairs),
            "agreement": agreement,
            "workload": {
                "file": workload_path.name,
                "pairs": len(smoke_pairs),
                "agreement": workload_agreement,
            },
            "crash": crash,
        },
        "timed": {
            "batch-process-1worker": run_process_1,
            "batch-process-4workers": run_process_4,
        },
    }


@_experiment("budget-degradation", "bounded verdict + spend accounting")
def _exp_budget(suite: str) -> dict[str, Any]:
    from ..budget import Budget
    from ..core.engine import check_containment
    from ..datalog.parser import parse_program

    program = parse_program(
        "t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z)."
    )
    result = check_containment(program, program, budget=Budget(max_expansions=5))
    accounting = result.details["budget"]
    spend = {
        name: value
        for name, value in accounting.get("spend", {}).items()
        if name != "elapsed_ms"  # wall-clock: deterministic counters only
    }
    return {
        "exact": {
            "verdict": result.verdict.value,
            "exhausted": accounting.get("exhausted"),
            "spend": spend,
        },
        "timed": {},
    }


@_experiment("antichain-ablation", "antichain vs subset containment kernel")
def _exp_antichain(suite: str) -> dict[str, Any]:
    import random

    from ..automata.dfa import containment_counterexample
    from ..automata.regex import parse_regex, random_regex
    from ..cache import clear_caches
    from ..rpq.containment import two_rpq_contained
    from ..rpq.rpq import TwoRPQ

    alphabet = ("a", "b")

    # E1-style family: seeded random regex pairs, checked with both
    # kernels through the same public entry point.  Hard gate: verdicts
    # agree, witnesses have equal (shortest) length, and every witness
    # actually separates the languages.
    atoms = ["a", "b", "a b", "a|b", "a*", "a+", "b a", "(a b)*", "a?"]
    if suite == "smoke":
        atoms, n_random = atoms[:6], 10
    else:
        n_random = 30
    rng = random.Random(11)
    nfa_pairs = [
        (parse_regex(x).to_nfa().trim().renumber(),
         parse_regex(y).to_nfa().trim().renumber())
        for x in atoms for y in atoms
    ]
    nfa_pairs += [
        (random_regex(rng, alphabet, 3).to_nfa().trim().renumber(),
         random_regex(rng, alphabet, 3).to_nfa().trim().renumber())
        for _ in range(n_random)
    ]
    agreements = disagreements = refuted = 0
    for left, right in nfa_pairs:
        witnesses = {}
        for kernel in ("subset", "antichain"):
            clear_caches()
            witnesses[kernel] = containment_counterexample(
                left, right, alphabet, kernel=kernel
            )
        sub, anti = witnesses["subset"], witnesses["antichain"]
        same_verdict = (sub is None) == (anti is None)
        valid = True
        if anti is not None:
            valid = (
                len(sub) == len(anti)
                and left.accepts(anti)
                and not right.accepts(anti)
            )
            refuted += 1
        if same_verdict and valid:
            agreements += 1
        else:
            disagreements += 1

    # E4-style family: Theorem 5 fold pipelines (including the paper's
    # divergence example) through both kernels of the on-the-fly search.
    tworpq_family = [("p", "p p-"), ("p", "p p- p")]
    if suite == "full":
        tworpq_family.append(("a a", "a a-"))
    tworpq_rows: list[list[Any]] = []
    for left_text, right_text in tworpq_family:
        q1, q2 = TwoRPQ.parse(left_text), TwoRPQ.parse(right_text)
        row: list[Any] = [f"{left_text} <= {right_text}"]
        for kernel in ("subset", "antichain"):
            clear_caches()
            result = two_rpq_contained(q1, q2, kernel=kernel)
            row.append(result.verdict.value)
        tworpq_rows.append(row)

    # Blow-up family (a|b)* a (a|b)^n vs the n+1 suffix: the right-hand
    # determinization is the classic 2^n subset blow-up; the frontier
    # counts (subset configs vs antichain kept configs + peak) are the
    # structural fact the speedup rests on, gated bit-for-bit.
    sizes = (6, 8) if suite == "smoke" else (6, 8, 10, 12)
    frontier: list[list[int]] = []
    timed_pair = None
    for n in sizes:
        suffix = " ".join(["(a|b)"] * n)
        left = parse_regex(f"(a|b)* a {suffix}").to_nfa().trim().renumber()
        right = (
            parse_regex(f"(a|b)* a (a|b) {suffix}").to_nfa().trim().renumber()
        )
        counts = {}
        for kernel in ("subset", "antichain"):
            clear_caches()
            stats: dict[str, Any] = {}
            containment_counterexample(
                left, right, alphabet, kernel=kernel, kernel_stats=stats
            )
            counts[kernel] = stats
        frontier.append(
            [
                n,
                counts["subset"]["configs"],
                counts["antichain"]["configs"],
                counts["antichain"]["antichain_peak"],
                counts["antichain"]["subsumption_hits"],
            ]
        )
        timed_pair = (left, right)

    assert timed_pair is not None
    timed_left, timed_right = timed_pair

    def run_kernel(kernel: str) -> Callable[[], Any]:
        def thunk() -> None:
            clear_caches()
            containment_counterexample(
                timed_left, timed_right, alphabet, kernel=kernel
            )

        return thunk

    return {
        "exact": {
            "pairs": len(nfa_pairs),
            "agreements": agreements,
            "disagreements": disagreements,
            "refuted": refuted,
            "tworpq": tworpq_rows,
            "frontier": frontier,
        },
        "timed": {
            "blowup-subset": run_kernel("subset"),
            "blowup-antichain": run_kernel("antichain"),
        },
    }


@_experiment("evaluation-engine", "snapshot set-at-a-time evaluation vs baselines")
def _exp_evaluation(suite: str) -> dict[str, Any]:
    import random

    from ..automata.indexed import use_indexed_kernels
    from ..automata.regex import random_regex
    from ..cache import clear_caches
    from ..crpq.evaluation import evaluate_uc2rpq
    from ..crpq.syntax import C2RPQ
    from ..graphdb.generators import random_graph
    from ..rpq.rpq import TwoRPQ

    alphabet = ("a", "b")
    n_queries = 8 if suite == "smoke" else 20
    rng = random.Random(17)
    queries = [
        TwoRPQ(random_regex(rng, alphabet, 3, allow_inverse=True))
        for _ in range(n_queries)
    ]
    db = random_graph(14, 40, alphabet, seed=23)

    # Hard gate 1: differential answer agreement — the snapshot engine
    # and the object-state baseline must produce identical answer sets
    # on every seeded query (sizes recorded so drift is visible).
    agreements = disagreements = 0
    answer_sizes: list[int] = []
    for query in queries:
        clear_caches()
        with use_indexed_kernels(True):
            fast = query.evaluate(db)
        with use_indexed_kernels(False):
            slow = query.evaluate(db)
        if fast == slow:
            agreements += 1
        else:
            disagreements += 1
        answer_sizes.append(len(fast))

    # Hard gate 2: snapshot invalidation — a cached result must never
    # survive a database mutation (the acceptance-criteria mutation test).
    mutable = random_graph(10, 20, alphabet, seed=29)
    probe = TwoRPQ.parse("a+")
    clear_caches()
    with use_indexed_kernels(True):
        before = probe.evaluate(mutable)
        missing = next(
            (source, target)
            for source in mutable.nodes_in_order()
            for target in mutable.nodes_in_order()
            if (source, target) not in before
        )
        mutable.add_edge(missing[0], "a", missing[1])
        after = probe.evaluate(mutable)
    mutation_series = {
        "before_size": len(before),
        "after_size": len(after),
        "stale_served": after == before,
        "new_pair_answered": missing in after,
    }

    # Timed: the repeated-query workload (same queries re-evaluated
    # against an unchanged database).  The "sequential" arm clears the
    # evaluation caches between calls, reproducing the pre-snapshot
    # cost structure (recompile adjacency + re-run BFS per call).
    def repeated_snapshot() -> None:
        clear_caches()
        with use_indexed_kernels(True):
            for _ in range(3):
                for query in queries:
                    query.evaluate(db)

    def repeated_sequential() -> None:
        with use_indexed_kernels(True):
            for _ in range(3):
                for query in queries:
                    clear_caches()
                    query.evaluate(db)

    # Timed: the multi-atom CRPQ workload — distinct regular atoms
    # anchored on the head, the shape benchmark A9 gates at >= 5x.
    crpq = C2RPQ.from_strings(
        "x,y",
        [
            ("(a|b)* a (a|b)*", "x", "y"),
            ("a (b a-)+", "x", "y"),
            ("b- (a|b)+ a", "x", "z"),
            ("(a b)+ b-", "z", "y"),
        ],
    )

    def multi_atom_snapshot() -> None:
        clear_caches()
        with use_indexed_kernels(True):
            for _ in range(5):
                evaluate_uc2rpq(crpq, db)

    def multi_atom_sequential() -> None:
        with use_indexed_kernels(True):
            for _ in range(5):
                clear_caches()
                evaluate_uc2rpq(crpq, db)

    return {
        "exact": {
            "queries": len(queries),
            "agreements": agreements,
            "disagreements": disagreements,
            "answer_sizes": answer_sizes,
            "mutation": mutation_series,
        },
        "timed": {
            "repeated-query-snapshot": repeated_snapshot,
            "repeated-query-sequential": repeated_sequential,
            "multi-atom-crpq-snapshot": multi_atom_snapshot,
            "multi-atom-crpq-sequential": multi_atom_sequential,
        },
    }


# --- the run harness ------------------------------------------------------------


def _new_run_id() -> str:
    return f"{time.strftime('%Y%m%d-%H%M%S')}-{os.urandom(2).hex()}"


def _normalize(value: Any) -> Any:
    """JSON round-trip: stable key order, and non-serializable data fails
    at record time rather than at file-write time."""
    return json.loads(json.dumps(value, sort_keys=True))


#: Traced checks whose merged spans form the run's hotspot profile —
#: one representative per pipeline family (Lemma 1 automata, Theorem 5
#: fold, Theorem 8 expansion).
def _profile_section(top: int = 20) -> dict[str, Any]:
    from ..automata.regex import parse_regex
    from ..core.engine import check_containment
    from ..datalog.parser import parse_program
    from ..rpq.rpq import RPQ, TwoRPQ

    program = parse_program("t(x,y) :- e(x,y). t(x,z) :- t(x,y), e(y,z).")
    checks = [
        (RPQ(parse_regex("(a b)+")), RPQ(parse_regex("(a b)*"))),
        (TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")),
        (program, program),
    ]
    profile = SpanProfile()
    for q1, q2 in checks:
        result = check_containment(q1, q2, trace=True)
        trace = result.details.get("trace")
        if trace is not None:
            profile.add(trace)
    return profile.to_dict(top)


def run_suite(
    suite: str = "smoke",
    repeats: int = 5,
    profile: bool = True,
    run_id: str | None = None,
) -> dict[str, Any]:
    """Execute a suite and return the JSON-ready run document.

    Resets metrics and clears caches first, so the recorded snapshots
    (and the cache-outcome exact series) describe this run alone.
    """
    specs = experiments_for(suite)
    reset_metrics()
    from ..cache import cache_stats, clear_caches

    clear_caches()
    experiments: list[dict[str, Any]] = []
    for spec in specs:
        built = spec.build(suite)
        timings = {
            name: time_workload(fn, repeats)
            for name, fn in sorted(built.get("timed", {}).items())
        }
        experiments.append(
            {
                "id": spec.id,
                "title": spec.title,
                "exact": _normalize(built["exact"]),
                "timings": timings,
            }
        )
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "run_id": run_id if run_id is not None else _new_run_id(),
        "suite": suite,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "timing_repeats": repeats,
        "environment": environment_fingerprint(),
        "experiments": experiments,
        "metrics": metrics_snapshot(),
        "cache": cache_stats(),
    }
    if profile:
        document["profile"] = _profile_section()
    problems = validate_run(document)
    if problems:  # pragma: no cover - the harness emits what it validates
        raise AssertionError(f"run document failed self-validation: {problems}")
    return document


def write_run(
    document: dict[str, Any],
    path: "str | os.PathLike[str] | None" = None,
    directory: "str | os.PathLike[str]" = ".",
) -> str:
    """Persist a run as ``BENCH_<runid>.json`` (or to an explicit *path*)."""
    import pathlib

    target = (
        pathlib.Path(path)
        if path is not None
        else pathlib.Path(directory) / f"BENCH_{document['run_id']}.json"
    )
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return str(target)


# --- schema validation ----------------------------------------------------------

_TIMING_KEYS = frozenset({"reps", "best_ms", "median_ms", "mad_ms", "samples_ms"})


def validate_run(document: Any) -> list[str]:
    """Schema problems of a run document (empty list = valid)."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"run document must be a dict, not {type(document).__name__}"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    if not isinstance(document.get("run_id"), str) or not document.get("run_id"):
        problems.append("run_id must be a non-empty string")
    if document.get("suite") not in SUITES:
        problems.append(f"suite {document.get('suite')!r} not in {SUITES}")
    environment = document.get("environment")
    if not isinstance(environment, dict) or not {
        "python",
        "platform",
        "commit",
    } <= set(environment or ()):
        problems.append("environment fingerprint missing python/platform/commit")
    if not isinstance(document.get("metrics"), dict):
        problems.append("metrics snapshot missing")
    experiments = document.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        problems.append("experiments must be a non-empty list")
        return problems
    for position, experiment in enumerate(experiments):
        label = (
            experiment.get("id", f"#{position}")
            if isinstance(experiment, dict)
            else f"#{position}"
        )
        if not isinstance(experiment, dict):
            problems.append(f"experiment {label}: not a dict")
            continue
        if not isinstance(experiment.get("id"), str):
            problems.append(f"experiment {label}: missing id")
        if not isinstance(experiment.get("exact"), dict):
            problems.append(f"experiment {label}: missing exact series")
        timings = experiment.get("timings")
        if not isinstance(timings, dict):
            problems.append(f"experiment {label}: missing timings dict")
            continue
        for name, timing in timings.items():
            if not isinstance(timing, dict) or not _TIMING_KEYS <= set(timing):
                problems.append(
                    f"experiment {label}: timing {name!r} missing "
                    f"{sorted(_TIMING_KEYS - set(timing or ()))}"
                )
    return problems


# --- the regression detector ----------------------------------------------------


@dataclasses.dataclass
class RunComparison:
    """Outcome of :func:`compare_runs` (render with :func:`render_comparison`).

    ``ok`` reflects the hard gate only: exact structural series (and
    schema/coverage problems).  Timing regressions live in their own
    list so callers choose the soft-gate policy (CI warns; local runs
    may ``--fail-on-timing``).
    """

    exact_failures: list[str] = dataclasses.field(default_factory=list)
    timing_regressions: list[dict[str, Any]] = dataclasses.field(default_factory=list)
    timing_improvements: list[dict[str, Any]] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)
    exact_checked: int = 0
    timings_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.exact_failures


def compare_runs(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tolerance_mads: float = 4.0,
    rel_floor: float = 0.25,
    abs_floor_ms: float = 0.05,
) -> RunComparison:
    """Compare *current* against *baseline*.

    Exact series are compared bit-for-bit (after JSON normalization);
    any difference, missing experiment, or schema problem is a hard
    failure.  A timing workload regresses when its median exceeds the
    baseline median by more than ``tolerance_mads`` times the noise
    scale ``max(baseline MAD, rel_floor * median, abs_floor_ms)`` —
    the floors keep a freakishly quiet baseline (MAD ~ 0) from turning
    scheduler jitter into alarms.  Symmetric improvements are reported
    informationally.
    """
    comparison = RunComparison()
    for role, document in (("baseline", baseline), ("current", current)):
        for problem in validate_run(document):
            comparison.exact_failures.append(f"{role}: {problem}")
    if comparison.exact_failures:
        return comparison
    if baseline["suite"] != current["suite"]:
        comparison.exact_failures.append(
            f"suite mismatch: baseline ran {baseline['suite']!r}, "
            f"current ran {current['suite']!r}"
        )
        return comparison
    base_by_id = {exp["id"]: exp for exp in baseline["experiments"]}
    current_by_id = {exp["id"]: exp for exp in current["experiments"]}
    for extra in sorted(set(current_by_id) - set(base_by_id)):
        comparison.notes.append(
            f"{extra}: new experiment (not in baseline; add it by regenerating)"
        )
    for experiment_id, base_exp in base_by_id.items():
        current_exp = current_by_id.get(experiment_id)
        if current_exp is None:
            comparison.exact_failures.append(
                f"{experiment_id}: experiment missing from current run"
            )
            continue
        base_exact = _normalize(base_exp["exact"])
        current_exact = _normalize(current_exp["exact"])
        comparison.exact_checked += 1
        if base_exact != current_exact:
            for key in sorted(set(base_exact) | set(current_exact)):
                expected = base_exact.get(key)
                measured = current_exact.get(key)
                if expected != measured:
                    comparison.exact_failures.append(
                        f"{experiment_id}: exact series {key!r} changed: "
                        f"baseline {_shorten(expected)} != current {_shorten(measured)}"
                    )
        for workload, base_timing in base_exp["timings"].items():
            current_timing = current_exp["timings"].get(workload)
            if current_timing is None:
                comparison.notes.append(
                    f"{experiment_id}: timing workload {workload!r} "
                    "missing from current run"
                )
                continue
            comparison.timings_checked += 1
            base_median = float(base_timing["median_ms"])
            noise = max(
                float(base_timing["mad_ms"]),
                rel_floor * base_median,
                abs_floor_ms,
            )
            delta = float(current_timing["median_ms"]) - base_median
            record = {
                "experiment": experiment_id,
                "workload": workload,
                "baseline_median_ms": base_median,
                "current_median_ms": float(current_timing["median_ms"]),
                "delta_ms": round(delta, 4),
                "threshold_ms": round(tolerance_mads * noise, 4),
            }
            if delta > tolerance_mads * noise:
                comparison.timing_regressions.append(record)
            elif -delta > tolerance_mads * noise:
                comparison.timing_improvements.append(record)
    return comparison


def _shorten(value: Any, limit: int = 120) -> str:
    text = json.dumps(value, sort_keys=True, default=str)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def render_comparison(comparison: RunComparison) -> str:
    """The human report behind ``repro bench compare``."""
    lines: list[str] = []
    if comparison.ok:
        lines.append(
            f"OK: {comparison.exact_checked} exact series match bit-for-bit, "
            f"{comparison.timings_checked} timing series checked"
        )
    else:
        lines.append(
            f"FAIL: {len(comparison.exact_failures)} exact-series failure(s)"
        )
        for failure in comparison.exact_failures:
            lines.append(f"  ! {failure}")
    if comparison.timing_regressions:
        lines.append(
            f"timing regressions ({len(comparison.timing_regressions)}; "
            "median beyond MAD tolerance):"
        )
        for record in comparison.timing_regressions:
            lines.append(
                f"  ~ {record['experiment']}/{record['workload']}: "
                f"{record['baseline_median_ms']:.3f} -> "
                f"{record['current_median_ms']:.3f} ms "
                f"(+{record['delta_ms']:.3f}, tolerance {record['threshold_ms']:.3f})"
            )
    else:
        lines.append("timing: no regressions beyond tolerance")
    for record in comparison.timing_improvements:
        lines.append(
            f"  + improvement {record['experiment']}/{record['workload']}: "
            f"{record['baseline_median_ms']:.3f} -> "
            f"{record['current_median_ms']:.3f} ms"
        )
    for note in comparison.notes:
        lines.append(f"  * {note}")
    return "\n".join(lines) + "\n"
