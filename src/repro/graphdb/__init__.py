"""Graph-database substrate (Section 3.1): storage, semipaths, workloads, IO."""

from . import io

from .database import GraphDatabase, canonical_database_of_word
from .snapshot import GraphSnapshot
from .generators import (
    cycle_graph,
    grid_graph,
    labeled_word_path,
    layered_dag,
    path_graph,
    random_graph,
    skewed_random_graph,
    social_network,
)

__all__ = [
    "io",
    "GraphDatabase",
    "GraphSnapshot",
    "canonical_database_of_word",
    "cycle_graph",
    "grid_graph",
    "labeled_word_path",
    "layered_dag",
    "path_graph",
    "random_graph",
    "skewed_random_graph",
    "social_network",
]
