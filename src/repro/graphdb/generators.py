"""Synthetic graph-database workloads.

The paper motivates graph databases with web, social-network, and
biological data (Section 1) but, being an overview, evaluates nothing.
These generators produce the synthetic equivalents used throughout the
experiment suite: simple shapes with known query answers (paths, cycles,
grids) for ground-truth tests, and label-skewed random and
social-network-like graphs for the performance experiments.

All generators take a :class:`random.Random` (or a seed) so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .database import GraphDatabase


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def path_graph(length: int, label: str = "e") -> GraphDatabase:
    """A directed path ``0 -label-> 1 -label-> ... -label-> length``."""
    return GraphDatabase.from_edges(
        [(i, label, i + 1) for i in range(length)], nodes=[0]
    )


def cycle_graph(length: int, label: str = "e") -> GraphDatabase:
    """A directed cycle on ``length`` nodes."""
    if length <= 0:
        raise ValueError("cycle length must be positive")
    return GraphDatabase.from_edges(
        [(i, label, (i + 1) % length) for i in range(length)]
    )


def grid_graph(rows: int, cols: int, right: str = "r", down: str = "d") -> GraphDatabase:
    """A rows x cols grid with 'right' and 'down' labeled edges."""
    edges = []
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                edges.append(((i, j), right, (i, j + 1)))
            if i + 1 < rows:
                edges.append(((i, j), down, (i + 1, j)))
    return GraphDatabase.from_edges(edges)


def labeled_word_path(word: Sequence[str]) -> GraphDatabase:
    """A path spelling *word* forward: node i -word[i]-> node i+1."""
    return GraphDatabase.from_edges(
        [(i, label, i + 1) for i, label in enumerate(word)], nodes=[0]
    )


def random_graph(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[str],
    seed: int | random.Random | None = 0,
) -> GraphDatabase:
    """Uniformly random edges with uniformly random labels."""
    rng = _rng(seed)
    db = GraphDatabase()
    for node in range(num_nodes):
        db.add_node(node)
    for _ in range(num_edges):
        db.add_edge(
            rng.randrange(num_nodes), rng.choice(list(labels)), rng.randrange(num_nodes)
        )
    return db


def skewed_random_graph(
    num_nodes: int,
    num_edges: int,
    labels: Sequence[str],
    skew: float = 2.0,
    seed: int | random.Random | None = 0,
) -> GraphDatabase:
    """Random graph with Zipf-like label frequencies (realistic skew)."""
    rng = _rng(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(labels))]
    db = GraphDatabase()
    for node in range(num_nodes):
        db.add_node(node)
    for _ in range(num_edges):
        db.add_edge(
            rng.randrange(num_nodes),
            rng.choices(list(labels), weights=weights, k=1)[0],
            rng.randrange(num_nodes),
        )
    return db


def social_network(
    num_people: int,
    avg_friends: float = 4.0,
    seed: int | random.Random | None = 0,
) -> GraphDatabase:
    """A social-network-like database over labels used by the examples.

    Schema: ``knows`` (preferential attachment, so a few hubs emerge),
    ``worksAt`` and ``livesIn`` (people -> organizations / cities),
    ``partOf`` (city -> country chains for transitive queries).
    """
    rng = _rng(seed)
    db = GraphDatabase()
    people = [f"p{i}" for i in range(num_people)]
    orgs = [f"org{i}" for i in range(max(2, num_people // 10))]
    cities = [f"city{i}" for i in range(max(2, num_people // 20))]
    countries = [f"country{i}" for i in range(max(2, len(cities) // 3))]

    degree = {person: 1 for person in people}
    target_edges = int(num_people * avg_friends)
    for _ in range(target_edges):
        source = rng.choice(people)
        # Preferential attachment on current in-degree.
        population = list(degree)
        weights = [degree[p] for p in population]
        target = rng.choices(population, weights=weights, k=1)[0]
        if source != target:
            db.add_edge(source, "knows", target)
            degree[target] += 1
    for person in people:
        db.add_edge(person, "worksAt", rng.choice(orgs))
        db.add_edge(person, "livesIn", rng.choice(cities))
    for city in cities:
        db.add_edge(city, "partOf", rng.choice(countries))
    # Country containment chains (so partOf+ is interesting).
    for index in range(len(countries) - 1):
        db.add_edge(countries[index], "partOf", countries[index + 1])
    return db


def layered_dag(
    layers: int,
    width: int,
    labels: Sequence[str] = ("e",),
    density: float = 0.5,
    seed: int | random.Random | None = 0,
) -> GraphDatabase:
    """A layered DAG: edges only go from layer i to layer i+1.

    Useful for Datalog same-generation and reachability workloads where
    the fixpoint depth equals the number of layers.
    """
    rng = _rng(seed)
    db = GraphDatabase()
    for layer in range(layers):
        for slot in range(width):
            db.add_node((layer, slot))
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                if rng.random() < density:
                    db.add_edge((layer, a), rng.choice(list(labels)), (layer + 1, b))
    return db
