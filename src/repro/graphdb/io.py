"""Loading and saving graph databases.

Two interchange formats:

- **edge-list text** — one ``source label target`` triple per line
  (whitespace-separated; ``#`` comments; isolated nodes as single-token
  lines).  The format most graph tools can produce.  Names whose string
  form the format cannot represent (embedded whitespace, ``#``, empty)
  are **rejected** with a :class:`ValueError` rather than silently
  written and re-parsed as garbage — use the JSON format for those.
- **JSON** — ``{"nodes": [...], "edges": [[source, label, target], ...]}``,
  round-tripping arbitrary JSON-representable node names.

Both serializers order nodes by the database's **insertion order**
(:meth:`GraphDatabase.nodes_in_order`) and edges by the induced
``(source id, label, target id)`` key.  That order is a function of the
construction sequence alone — unlike the former ``sorted(key=repr)``,
which for nodes with default ``object.__repr__`` sorted by memory
address and therefore differed run to run.
"""

from __future__ import annotations

import json
import pathlib

from .database import GraphDatabase


def _edge_list_token(value, kind: str) -> str:
    """The string token for a node or label, or raise if unserializable.

    The edge-list grammar splits on whitespace and truncates at ``#``,
    so any name whose ``str()`` contains either (or is empty) cannot
    round-trip through the format.
    """
    token = str(value)
    if not token or "#" in token or any(ch.isspace() for ch in token):
        raise ValueError(
            f"{kind} {value!r} cannot be written to the edge-list format "
            f"(str() form {token!r} is empty or contains whitespace/'#'); "
            "use the JSON format (to_json/save as .json), which round-trips "
            "arbitrary JSON-representable names"
        )
    return token


def _ordered_edges(db: GraphDatabase) -> list[tuple]:
    """Edges sorted by ``(source id, label, target id)`` — deterministic
    for any node type because ids come from insertion order."""
    index = {node: i for i, node in enumerate(db.nodes_in_order())}
    return sorted(db.edges(), key=lambda e: (index[e[0]], e[1], index[e[2]]))


def to_edge_list(db: GraphDatabase) -> str:
    """Serialize to the edge-list text format (insertion-order deterministic).

    Raises:
        ValueError: when a node name or label cannot be represented in
            the whitespace-separated format (see :func:`_edge_list_token`).
    """
    lines = [
        " ".join(
            (
                _edge_list_token(source, "node name"),
                _edge_list_token(label, "label"),
                _edge_list_token(target, "node name"),
            )
        )
        for source, label, target in _ordered_edges(db)
    ]
    touched = {n for edge in db.edges() for n in (edge[0], edge[2])}
    lines += [
        _edge_list_token(node, "node name")
        for node in db.nodes_in_order()
        if node not in touched
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def from_edge_list(text: str) -> GraphDatabase:
    """Parse the edge-list text format (node names become strings)."""
    db = GraphDatabase()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            db.add_node(parts[0])
        elif len(parts) == 3:
            source, label, target = parts
            db.add_edge(source, label, target)
        else:
            raise ValueError(
                f"expected 'source label target' or a lone node, got {raw!r}"
            )
    return db


def to_json(db: GraphDatabase) -> str:
    """Serialize to the JSON format (insertion-order deterministic)."""
    return json.dumps(
        {
            "nodes": list(db.nodes_in_order()),
            "edges": [[s, l, t] for s, l, t in _ordered_edges(db)],
        },
        default=list,
    )


def from_json(text: str) -> GraphDatabase:
    """Parse the JSON format (lists become tuples so nodes stay hashable)."""
    data = json.loads(text)

    def freeze(node):
        return tuple(freeze(part) for part in node) if isinstance(node, list) else node

    db = GraphDatabase()
    for node in data.get("nodes", []):
        db.add_node(freeze(node))
    for source, label, target in data.get("edges", []):
        db.add_edge(freeze(source), label, freeze(target))
    return db


def save(db: GraphDatabase, path: str | pathlib.Path) -> None:
    """Save by extension: ``.json`` -> JSON, anything else -> edge list."""
    path = pathlib.Path(path)
    text = to_json(db) if path.suffix == ".json" else to_edge_list(db)
    path.write_text(text)


def load(path: str | pathlib.Path) -> GraphDatabase:
    """Load by extension: ``.json`` -> JSON, anything else -> edge list."""
    path = pathlib.Path(path)
    text = path.read_text()
    return from_json(text) if path.suffix == ".json" else from_edge_list(text)
