"""Loading and saving graph databases.

Two interchange formats:

- **edge-list text** — one ``source label target`` triple per line
  (whitespace-separated; ``#`` comments; isolated nodes as single-token
  lines).  The format most graph tools can produce.
- **JSON** — ``{"nodes": [...], "edges": [[source, label, target], ...]}``,
  round-tripping arbitrary JSON-representable node names.
"""

from __future__ import annotations

import json
import pathlib
from typing import IO

from .database import GraphDatabase


def to_edge_list(db: GraphDatabase) -> str:
    """Serialize to the edge-list text format (sorted, deterministic)."""
    lines = [
        f"{source} {label} {target}"
        for source, label, target in sorted(db.edges(), key=repr)
    ]
    touched = {n for edge in db.edges() for n in (edge[0], edge[2])}
    lines += [str(node) for node in sorted(db.nodes - touched, key=repr)]
    return "\n".join(lines) + ("\n" if lines else "")


def from_edge_list(text: str) -> GraphDatabase:
    """Parse the edge-list text format (node names become strings)."""
    db = GraphDatabase()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            db.add_node(parts[0])
        elif len(parts) == 3:
            source, label, target = parts
            db.add_edge(source, label, target)
        else:
            raise ValueError(
                f"expected 'source label target' or a lone node, got {raw!r}"
            )
    return db


def to_json(db: GraphDatabase) -> str:
    """Serialize to the JSON format (sorted, deterministic)."""
    return json.dumps(
        {
            "nodes": sorted(db.nodes, key=repr),
            "edges": sorted(([s, l, t] for s, l, t in db.edges()), key=repr),
        },
        default=list,
    )


def from_json(text: str) -> GraphDatabase:
    """Parse the JSON format (lists become tuples so nodes stay hashable)."""
    data = json.loads(text)

    def freeze(node):
        return tuple(freeze(part) for part in node) if isinstance(node, list) else node

    db = GraphDatabase()
    for node in data.get("nodes", []):
        db.add_node(freeze(node))
    for source, label, target in data.get("edges", []):
        db.add_edge(freeze(source), label, freeze(target))
    return db


def save(db: GraphDatabase, path: str | pathlib.Path) -> None:
    """Save by extension: ``.json`` -> JSON, anything else -> edge list."""
    path = pathlib.Path(path)
    text = to_json(db) if path.suffix == ".json" else to_edge_list(db)
    path.write_text(text)


def load(path: str | pathlib.Path) -> GraphDatabase:
    """Load by extension: ``.json`` -> JSON, anything else -> edge list."""
    path = pathlib.Path(path)
    text = path.read_text()
    return from_json(text) if path.suffix == ".json" else from_edge_list(text)
