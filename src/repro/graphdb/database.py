"""Edge-labeled graph databases (Section 3.1 of the paper).

A graph database is a finite directed graph whose edges carry labels
from a finite alphabet Sigma: an edge ``r(x, y)`` states that relation
``r`` holds between objects ``x`` and ``y``.  The alphabet doubles as
the (flexible) schema — it is derived from the data, never declared.

Besides storage and indexing, this module implements the *semipath*
machinery of Section 3.1: navigation along edges in both directions,
where traversing an edge backwards reads its inverse letter.

Nodes are kept in **insertion order** (the stable total order every
compiled artifact uses — see :mod:`repro.graphdb.snapshot`), and every
structural mutation bumps a **revision counter** so snapshots and the
evaluation caches keyed on them invalidate precisely when the data
changes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

from ..automata.alphabet import Alphabet, base_symbol, inverse, is_inverse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (snapshot imports us)
    from .snapshot import GraphSnapshot

Node = Hashable
Edge = tuple[Node, str, Node]
Word = tuple[str, ...]


class GraphDatabase:
    """A finite directed edge-labeled graph with forward/backward indexes.

    >>> db = GraphDatabase.from_edges([("a", "knows", "b"), ("b", "knows", "c")])
    >>> sorted(db.successors("a", "knows"))
    ['b']
    >>> sorted(db.successors("b", "knows-"))   # inverse letter: backwards
    ['a']
    """

    def __init__(self) -> None:
        self._forward: dict[tuple[Node, str], set] = defaultdict(set)
        self._backward: dict[tuple[Node, str], set] = defaultdict(set)
        # dict-as-ordered-set: insertion order is the stable node order.
        self._nodes: dict[Node, None] = {}
        self._labels: set[str] = set()
        self._edge_count = 0
        self._revision = 0
        self._snapshot: "GraphSnapshot | None" = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], nodes: Iterable[Node] = ()) -> "GraphDatabase":
        """Build a database from ``(source, label, target)`` triples.

        Args:
            edges: the labeled edges.
            nodes: extra isolated nodes to include.
        """
        db = cls()
        for source, label, target in edges:
            db.add_edge(source, label, target)
        for node in nodes:
            db.add_node(node)
        return db

    def add_node(self, node: Node) -> None:
        if node not in self._nodes:
            self._nodes[node] = None
            self._touch()

    def add_edge(self, source: Node, label: str, target: Node) -> None:
        """Insert edge ``label(source, target)``; labels must be base symbols."""
        if is_inverse(label):
            raise ValueError(
                f"edges are stored under base labels; got inverse label {label!r}"
            )
        if (source, label) not in self._forward or target not in self._forward[(source, label)]:
            self._edge_count += 1
            self._touch()
        self._forward[(source, label)].add(target)
        self._backward[(target, label)].add(source)
        self._nodes.setdefault(source)
        self._nodes.setdefault(target)
        self._labels.add(label)

    def _touch(self) -> None:
        """Record a structural mutation: bump the revision, drop the snapshot."""
        self._revision += 1
        self._snapshot = None

    # -- inspection --------------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def nodes_in_order(self) -> tuple:
        """All nodes in insertion order — the stable total order compiled
        artifacts (snapshots, IO serializations) index nodes by.  Unlike
        ``sorted(key=repr)`` it does not depend on memory addresses, so
        it is identical across runs for the same construction sequence.
        """
        return tuple(self._nodes)

    @property
    def revision(self) -> int:
        """Monotone counter of structural mutations (snapshot invalidation)."""
        return self._revision

    def snapshot(self, tracer=None) -> "GraphSnapshot":
        """The compiled :class:`~repro.graphdb.snapshot.GraphSnapshot`.

        Built at most once per revision: mutations (:meth:`add_edge` /
        :meth:`add_node`) drop the cached snapshot, so a stale snapshot
        can never be observed through this accessor.
        """
        if self._snapshot is None:
            from .snapshot import GraphSnapshot

            self._snapshot = GraphSnapshot.from_database(self, tracer=tracer)
        return self._snapshot

    @property
    def labels(self) -> frozenset[str]:
        """The edge alphabet Sigma, as read off the data."""
        return frozenset(self._labels)

    @property
    def alphabet(self) -> Alphabet:
        return Alphabet(tuple(sorted(self._labels)))

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def edges(self) -> Iterator[Edge]:
        for (source, label), targets in self._forward.items():
            for target in targets:
                yield (source, label, target)

    def relation(self, label: str) -> frozenset[tuple[Node, Node]]:
        """The binary relation ``r(D)`` for a (possibly inverse) label."""
        if is_inverse(label):
            return frozenset(
                (target, source)
                for (source, base), targets in self._forward.items()
                if base == base_symbol(label)
                for target in targets
            )
        return frozenset(
            (source, target)
            for (src, base), targets in self._forward.items()
            if base == label
            for source, target in ((src, t) for t in targets)
        )

    def successors(self, node: Node, label: str) -> frozenset:
        """One navigation step; inverse labels navigate backwards."""
        if is_inverse(label):
            return frozenset(self._backward.get((node, base_symbol(label)), ()))
        return frozenset(self._forward.get((node, label), ()))

    # -- semipaths (Section 3.1) --------------------------------------------------

    def semipath_targets(self, source: Node, word: Word) -> frozenset:
        """Nodes reachable from *source* by a semipath labeled *word*."""
        current = {source} if source in self._nodes else set()
        for label in word:
            nxt: set = set()
            for node in current:
                nxt |= self.successors(node, label)
            current = nxt
            if not current:
                break
        return frozenset(current)

    def has_semipath(self, source: Node, target: Node, word: Word) -> bool:
        """Is there a semipath labeled *word* from *source* to *target*?"""
        return target in self.semipath_targets(source, word)

    def find_semipath(self, source: Node, target: Node, word: Word) -> tuple | None:
        """A concrete semipath ``(y0, p1, y1, ..., pn, yn)`` or None."""
        layers: list[set] = [{source} if source in self._nodes else set()]
        for label in word:
            nxt: set = set()
            for node in layers[-1]:
                nxt |= self.successors(node, label)
            layers.append(nxt)
        if target not in layers[-1]:
            return None
        # Walk backwards choosing any predecessor at each layer.
        path: list = [target]
        cursor = target
        for index in range(len(word) - 1, -1, -1):
            label = word[index]
            for candidate in layers[index]:
                if cursor in self.successors(candidate, label):
                    path.append(label)
                    path.append(candidate)
                    cursor = candidate
                    break
        path.reverse()
        return tuple(path)

    # -- misc ----------------------------------------------------------------------

    def restrict(self, nodes: Iterable[Node]) -> "GraphDatabase":
        """The induced subdatabase on *nodes*."""
        keep = set(nodes)
        sub = GraphDatabase()
        for node in self._nodes:  # insertion order: keeps sub-db ids stable
            if node in keep:
                sub.add_node(node)
        for source, label, target in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, label, target)
        return sub

    def renamed(self, mapping: dict) -> "GraphDatabase":
        """Apply a node renaming (useful for canonical databases)."""
        db = GraphDatabase()
        for node in self._nodes:
            db.add_node(mapping.get(node, node))
        for source, label, target in self.edges():
            db.add_edge(mapping.get(source, source), label, mapping.get(target, target))
        return db

    def disjoint_union(self, other: "GraphDatabase") -> "GraphDatabase":
        """Tagged disjoint union of two databases."""
        db = GraphDatabase()
        for node in self._nodes:
            db.add_node((0, node))
        for node in other._nodes:
            db.add_node((1, node))
        for source, label, target in self.edges():
            db.add_edge((0, source), label, (0, target))
        for source, label, target in other.edges():
            db.add_edge((1, source), label, (1, target))
        return db

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDatabase):
            return NotImplemented
        return self._nodes == other._nodes and set(self.edges()) == set(other.edges())

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash((frozenset(self._nodes), frozenset(self.edges())))

    def __repr__(self) -> str:
        return f"GraphDatabase(nodes={self.num_nodes}, edges={self.num_edges})"


def canonical_database_of_word(word: Word, start: Node = 0) -> tuple[GraphDatabase, Node, Node]:
    """The canonical semipath database of a word over Sigma±.

    Returns ``(db, source, target)`` where ``db`` is a fresh path of
    ``len(word)`` edges: forward letters produce forward edges, inverse
    letters produce backward edges (so the *semipath* from source to
    target spells exactly *word*).  This is the building block of
    expansion-based containment for UC2RPQ and RQ.
    """
    db = GraphDatabase()
    if isinstance(start, int):
        names: list[Node] = list(range(start, start + len(word) + 1))
    else:  # pragma: no cover - defensive
        raise TypeError("start must be an integer node id")
    db.add_node(names[0])
    for index, label in enumerate(word):
        here, there = names[index], names[index + 1]
        if is_inverse(label):
            db.add_edge(there, base_symbol(label), here)
        else:
            db.add_edge(here, label, there)
    return db, names[0], names[-1]
