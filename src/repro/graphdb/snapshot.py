"""Compiled graph snapshots: the set-at-a-time evaluation substrate.

Query evaluation used to recompile the world on every call: each
``evaluate()`` re-interned the graph's nodes, re-resolved every inverse
letter through the backward index, and rebuilt a per-symbol adjacency
table — then threw all of it away.  A :class:`GraphSnapshot` is that
compilation done **once per database revision**: stable insertion-order
node ids, per-label forward/backward adjacency as bitset rows, and a
cheap structural fingerprint so the caches in :mod:`repro.cache` can key
evaluation results on ``(query canonical form, snapshot fingerprint)``.

The module also hosts the evaluation kernels that run against a
snapshot (the counterparts of the containment kernels in
:mod:`repro.automata.indexed`):

- :func:`reach_all_sources` — the **multi-source frontier BFS**: one
  product search answers the query for *every* source simultaneously by
  propagating per-configuration *source bitsets* instead of replaying a
  scalar BFS per source (set-at-a-time in the Section 3.3 sense);
- :func:`reach_from_source` — the single-source product BFS for
  ``targets``/``matches`` when no all-pairs result is cached;
- :func:`witness_path` — shortest-witness extraction with parent
  backtracking, the same scheme as the antichain kernel, so witness
  search shares the compiled context with answering.

Invalidation contract: :meth:`repro.graphdb.database.GraphDatabase.snapshot`
rebuilds on mutation (the revision counter), and the fingerprint binds
node identities, labels, and the full adjacency structure, so a cache
entry keyed on a fingerprint can never serve answers for a database
that has since changed.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Sequence

from ..automata.alphabet import base_symbol, is_inverse
from ..automata.indexed import IndexedNFA, bits
from ..obs.metrics import counter
from ..obs.trace import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from .database import GraphDatabase, Node

__all__ = [
    "GraphSnapshot",
    "reach_all_sources",
    "reach_from_source",
    "witness_path",
]

_SNAPSHOT_BUILDS = counter("evaluation.snapshot_builds")


class GraphSnapshot:
    """A graph database compiled to dense integer node ids + bitset rows.

    Attributes:
        nodes: the node objects, ``nodes[i]`` for node id ``i`` —
            **insertion order** of the source database, so ids are
            stable across runs for the same construction sequence
            (never ``sorted(key=repr)``, which is memory-address
            nondeterministic for default-``repr`` objects).
        node_index: node object -> node id.
        labels: the base-label alphabet, sorted (label id = index).
        forward: ``forward[label_id][node_id]`` — successor bitset.
        backward: ``backward[label_id][node_id]`` — predecessor bitset.
        fingerprint: ``(num_nodes, num_edges, content_hash)`` — the
            hashable cache-key component binding node identities,
            labels, and the whole adjacency structure.
    """

    __slots__ = (
        "nodes",
        "node_index",
        "labels",
        "label_index",
        "forward",
        "backward",
        "num_nodes",
        "num_edges",
        "fingerprint",
        "_relations",
        "_zeros",
    )

    def __init__(
        self,
        nodes: tuple,
        labels: tuple[str, ...],
        forward: list[list[int]],
        backward: list[list[int]],
        num_edges: int,
    ) -> None:
        self.nodes = nodes
        self.node_index = {node: i for i, node in enumerate(nodes)}
        self.labels = labels
        self.label_index = {label: i for i, label in enumerate(labels)}
        self.forward = forward
        self.backward = backward
        self.num_nodes = len(nodes)
        self.num_edges = num_edges
        content = hash(
            (
                nodes,
                labels,
                tuple(tuple(row) for row in forward),
            )
        )
        self.fingerprint = (self.num_nodes, num_edges, content)
        self._relations: dict[str, frozenset] = {}
        self._zeros = [0] * self.num_nodes  # shared empty row; never mutated

    @classmethod
    def from_database(cls, db: "GraphDatabase", tracer=None) -> "GraphSnapshot":
        """Compile *db* (one ``snapshot-build`` span, one counter bump)."""
        with maybe_span(
            tracer, "snapshot-build", nodes=db.num_nodes, edges=db.num_edges
        ):
            nodes = db.nodes_in_order()
            index = {node: i for i, node in enumerate(nodes)}
            labels = tuple(sorted(db.labels))
            label_index = {label: i for i, label in enumerate(labels)}
            n = len(nodes)
            forward = [[0] * n for _ in labels]
            backward = [[0] * n for _ in labels]
            for source, label, target in db.edges():
                row = label_index[label]
                s, t = index[source], index[target]
                forward[row][s] |= 1 << t
                backward[row][t] |= 1 << s
            _SNAPSHOT_BUILDS.inc()
            return cls(nodes, labels, forward, backward, db.num_edges)

    # -- symbol resolution -------------------------------------------------------

    def rows_for(self, symbol: str) -> Sequence[int]:
        """The adjacency bitset rows one navigation step of *symbol* reads.

        Inverse letters resolve through the backward index; symbols the
        database never mentions get a shared all-zeros row (do not
        mutate the returned list).
        """
        if is_inverse(symbol):
            row = self.label_index.get(base_symbol(symbol))
            return self.backward[row] if row is not None else self._zeros
        row = self.label_index.get(symbol)
        return self.forward[row] if row is not None else self._zeros

    def adjacency_for(self, symbols: Iterable[str]) -> list[Sequence[int]]:
        """Per-symbol adjacency rows, aligned with *symbols*' order —
        the pre-resolved table the evaluation kernels run against."""
        return [self.rows_for(symbol) for symbol in symbols]

    def relation(self, label: str) -> frozenset:
        """The binary relation ``r(D)`` for a (possibly inverse) label,
        materialized once per snapshot and memoized."""
        cached = self._relations.get(label)
        if cached is None:
            rows = self.rows_for(label)
            nodes = self.nodes
            cached = frozenset(
                (nodes[source], nodes[target])
                for source in range(self.num_nodes)
                for target in bits(rows[source])
            )
            self._relations[label] = cached
        return cached

    def __repr__(self) -> str:
        return (
            f"GraphSnapshot(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={len(self.labels)})"
        )


# --- evaluation kernels -----------------------------------------------------------


def reach_all_sources(
    nfa: IndexedNFA,
    adjacency: Sequence[Sequence[int]],
    num_nodes: int,
    meter=None,
) -> tuple[list[int], int]:
    """Multi-source product BFS: per-target bitsets of answering sources.

    Args:
        nfa: the compiled query automaton.
        adjacency: ``adjacency[symbol_id][node_id]`` — successor bitsets
            (inverse letters pre-resolved; see
            :meth:`GraphSnapshot.adjacency_for`).
        num_nodes: graph size.
        meter: optional :class:`repro.budget.BudgetMeter`, charged one
            ``"configs"`` unit per frontier entry.

    Returns:
        ``(answers, configs)`` where ``answers[target_id]`` is the
        bitset of source ids ``x`` with a conforming semipath
        ``x -> target``, and ``configs`` counts frontier entries
        processed (the work measure the ``eval-bfs`` span reports).

    Instead of one scalar BFS per source (the object-state baseline),
    every configuration ``(state, node)`` carries the bitset of sources
    that reach it; frontier entries propagate only *newly added* source
    bits, so each (state, node, source) triple is expanded at most once
    and the inner loop is word-parallel over sources.
    """
    num_states = nfa.num_states
    num_symbols = len(nfa.symbols)
    # reach[state][node] = bitset of sources reaching (node, state).
    reach = [[0] * num_nodes for _ in range(num_states)]
    queue: deque[tuple[int, int, int]] = deque()
    for state in bits(nfa.initial):
        row = reach[state]
        for node in range(num_nodes):
            row[node] = 1 << node
            queue.append((state, node, 1 << node))
    configs = 0
    if meter is not None:
        meter.charge("configs", len(queue))
    while queue:
        state, node, added = queue.popleft()
        configs += 1
        if meter is not None:
            meter.poll()
        for row in range(num_symbols):
            next_states = nfa.delta[row][state]
            if not next_states:
                continue
            neighbors = adjacency[row][node]
            if not neighbors:
                continue
            for next_state in bits(next_states):
                reach_row = reach[next_state]
                for neighbor in bits(neighbors):
                    fresh = added & ~reach_row[neighbor]
                    if fresh:
                        reach_row[neighbor] |= fresh
                        queue.append((next_state, neighbor, fresh))
                        if meter is not None:
                            meter.charge("configs")
    answers = [0] * num_nodes
    for state in bits(nfa.final):
        row = reach[state]
        for node in range(num_nodes):
            answers[node] |= row[node]
    return answers, configs


def reach_from_source(
    nfa: IndexedNFA,
    adjacency: Sequence[Sequence[int]],
    num_nodes: int,
    source: int,
    meter=None,
) -> int:
    """Single-source product BFS: bitset of nodes reachable from *source*
    along words of the language (the ``targets``/``matches`` kernel)."""
    node_masks = [0] * num_nodes
    node_masks[source] = nfa.initial
    queue: deque[tuple[int, int]] = deque()
    if nfa.initial:
        queue.append((source, nfa.initial))
    num_symbols = len(nfa.symbols)
    while queue:
        node, added = queue.popleft()
        if meter is not None:
            meter.poll()
        for row in range(num_symbols):
            next_states = nfa.successor_mask(added, row)
            if not next_states:
                continue
            for neighbor in bits(adjacency[row][node]):
                fresh = next_states & ~node_masks[neighbor]
                if fresh:
                    node_masks[neighbor] |= fresh
                    queue.append((neighbor, fresh))
                    if meter is not None:
                        meter.charge("configs")
    final = nfa.final
    found = 0
    for node in range(num_nodes):
        if node_masks[node] & final:
            found |= 1 << node
    return found


def witness_path(
    nfa: IndexedNFA,
    adjacency: Sequence[Sequence[int]],
    num_nodes: int,
    source: int,
    target: int,
    meter=None,
) -> list[tuple[int, int]] | None:
    """A shortest conforming semipath ``source -> target``, or None.

    Returns the step list ``[(symbol_id, node_id), ...]`` (the start
    node is *source* itself), extracted by parent backtracking over the
    BFS configuration graph — the same scheme the antichain containment
    kernel uses, so witnesses are shortest by construction and the
    search shares the compiled context with answering.
    """
    num_symbols = len(nfa.symbols)
    initial = [(source, state) for state in bits(nfa.initial)]
    parents: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {
        config: None for config in initial
    }
    hit = next(
        (
            config
            for config in initial
            if config[0] == target and nfa.is_final(config[1])
        ),
        None,
    )
    queue = deque(initial)
    if meter is not None:
        meter.charge("configs", len(initial))
    while queue and hit is None:
        config = queue.popleft()
        node, state = config
        if meter is not None:
            meter.poll()
        for row in range(num_symbols):
            next_states = nfa.delta[row][state]
            if not next_states:
                continue
            for neighbor in bits(adjacency[row][node]):
                for next_state in bits(next_states):
                    next_config = (neighbor, next_state)
                    if next_config in parents:
                        continue
                    parents[next_config] = (config, row)
                    if meter is not None:
                        meter.charge("configs")
                    if neighbor == target and nfa.is_final(next_state):
                        hit = next_config
                        break
                    queue.append(next_config)
                if hit is not None:
                    break
            if hit is not None:
                break
    if hit is None:
        return None
    steps: list[tuple[int, int]] = []
    cursor = hit
    while parents[cursor] is not None:
        previous, row = parents[cursor]  # type: ignore[misc]
        steps.append((row, cursor[0]))
        cursor = previous
    steps.reverse()
    return steps
