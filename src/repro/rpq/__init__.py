"""RPQs and 2RPQs (Section 3): evaluation and containment (Theorem 5)."""

from .containment import (
    DivergenceExample,
    paper_divergence_example,
    rpq_contained,
    two_rpq_contained,
    two_rpq_equivalent,
    word_counterexample,
)
from .property_paths import (
    PropertyPathError,
    from_property_path,
    to_property_path,
)
from .rpq import RPQ, TwoRPQ, evaluate_nfa_on_graph, targets_from
from .views import Rewriting, answer_using_views, rewrite, view_graph

__all__ = [
    "DivergenceExample",
    "paper_divergence_example",
    "rpq_contained",
    "two_rpq_contained",
    "two_rpq_equivalent",
    "word_counterexample",
    "PropertyPathError",
    "from_property_path",
    "to_property_path",
    "Rewriting",
    "answer_using_views",
    "rewrite",
    "view_graph",
    "RPQ",
    "TwoRPQ",
    "evaluate_nfa_on_graph",
    "targets_from",
]
