"""Regular path queries and their two-way extension (Section 3.1).

An RPQ is a regular expression over the edge alphabet Sigma; its answer
over a graph database D is the set of node pairs connected by a directed
path spelling a word of the language.  A 2RPQ additionally uses inverse
letters ``r-`` and is evaluated over *semipaths* — navigations that may
traverse edges backwards.

Evaluation is a product construction over ``(node, automaton state)``
configurations.  With the indexed kernels enabled it runs **set-at-a-
time** against a compiled :class:`repro.graphdb.snapshot.GraphSnapshot`:
the automaton and the per-symbol adjacency are compiled once per
database revision (cached on ``(query canonical form, snapshot
fingerprint)`` — see :mod:`repro.cache`), and a single multi-source
frontier BFS answers the query for every source simultaneously.  The
object-state per-source BFS remains below as the ablation baseline
(benchmark A9 measures the gap).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..automata.alphabet import base_symbol
from ..automata.dfa import reduce_nfa
from ..automata.indexed import IndexedNFA, bits, indexed_kernels_enabled
from ..automata.nfa import NFA, Word
from ..cache import (
    eval_context_cache,
    evaluation_cache,
    nfa_cache_key,
    regex_nfa_cache,
)
from ..graphdb.database import GraphDatabase, Node
from ..graphdb.snapshot import (
    GraphSnapshot,
    reach_all_sources,
    reach_from_source,
    witness_path,
)
from ..obs.metrics import counter
from ..obs.trace import maybe_span
from ..automata.regex import Regex, parse_regex

_EVAL_BFS_RUNS = counter("evaluation.bfs_runs")
_EVAL_QUERIES = counter("evaluation.queries")


def _compiled(regex: Regex) -> NFA:
    """Reduced NFA for a regex (cached; regexes are frozen dataclasses)."""
    return regex_nfa_cache.get_or_compute(regex, lambda: reduce_nfa(regex.to_nfa()))


class _EvalContext:
    """One compiled (automaton, snapshot) pair: the unit evaluation caches.

    Immutable after construction, so it is shared freely across all
    sources, atoms, and repeated queries against the same revision.
    """

    __slots__ = ("compiled", "snapshot", "adjacency")

    def __init__(self, compiled: IndexedNFA, snapshot: GraphSnapshot) -> None:
        self.compiled = compiled
        self.snapshot = snapshot
        self.adjacency = snapshot.adjacency_for(compiled.symbols)


def _graph_context(nfa: NFA, db: GraphDatabase, tracer=None) -> _EvalContext:
    """The compiled evaluation context for (nfa, db), cached per revision.

    The snapshot pre-resolves inverse letters through the backward
    index; the context aligns its bitset rows with the automaton's
    symbol order.  Node ids are the snapshot's stable insertion-order
    ids (never ``sorted(key=repr)``, which is run-to-run
    nondeterministic for default-``repr`` node objects).
    """
    snapshot = db.snapshot(tracer=tracer)
    key = ("ctx", nfa_cache_key(nfa), snapshot.fingerprint)
    return eval_context_cache.get_or_compute(
        key, lambda: _EvalContext(IndexedNFA.from_nfa(nfa), snapshot)
    )


def evaluate_nfa_on_graph(
    nfa: NFA, db: GraphDatabase, tracer=None, meter=None
) -> frozenset[tuple[Node, Node]]:
    """All pairs (x, y) connected by a semipath spelling a word of L(nfa)."""
    _EVAL_QUERIES.inc()
    if indexed_kernels_enabled():
        context = _graph_context(nfa, db, tracer=tracer)
        key = ("pairs", nfa_cache_key(nfa), context.snapshot.fingerprint)

        def compute() -> frozenset[tuple[Node, Node]]:
            nodes = context.snapshot.nodes
            with maybe_span(
                tracer,
                "eval-bfs",
                mode="all-sources",
                nodes=len(nodes),
                states=context.compiled.num_states,
            ) as span:
                answers, configs = reach_all_sources(
                    context.compiled, context.adjacency, len(nodes), meter=meter
                )
                span.count("configs", configs)
            _EVAL_BFS_RUNS.inc()
            return frozenset(
                (nodes[source], nodes[target])
                for target in range(len(nodes))
                for source in bits(answers[target])
            )

        return evaluation_cache.get_or_compute(key, compute)
    answers: set[tuple[Node, Node]] = set()
    for source in db.nodes:
        for target in targets_from(nfa, db, source):
            answers.add((source, target))
    return frozenset(answers)


def targets_from(
    nfa: NFA, db: GraphDatabase, source: Node, tracer=None, meter=None
) -> frozenset[Node]:
    """Nodes reachable from *source* along words of L(nfa) (product BFS)."""
    if source not in db.nodes:
        return frozenset()
    if indexed_kernels_enabled():
        context = _graph_context(nfa, db, tracer=tracer)
        nodes = context.snapshot.nodes
        cached = evaluation_cache.peek(
            ("pairs", nfa_cache_key(nfa), context.snapshot.fingerprint)
        )
        if cached is not None:
            # An all-pairs result is already materialized for this
            # snapshot: slice it instead of re-running any BFS.
            return frozenset(y for x, y in cached if x == source)
        with maybe_span(
            tracer, "eval-bfs", mode="single-source", nodes=len(nodes)
        ):
            mask = reach_from_source(
                context.compiled,
                context.adjacency,
                len(nodes),
                context.snapshot.node_index[source],
                meter=meter,
            )
        _EVAL_BFS_RUNS.inc()
        return frozenset(nodes[i] for i in bits(mask))
    start = {(source, state) for state in nfa.initial}
    seen = set(start)
    queue = deque(start)
    found: set[Node] = set()
    while queue:
        node, state = queue.popleft()
        if state in nfa.final:
            found.add(node)
        for symbol in nfa.alphabet:
            next_states = nfa.successors(state, symbol)
            if not next_states:
                continue
            for neighbor in db.successors(node, symbol):
                for next_state in next_states:
                    config = (neighbor, next_state)
                    if config not in seen:
                        seen.add(config)
                        queue.append(config)
    return frozenset(found)


@dataclass(frozen=True)
class TwoRPQ:
    """A two-way regular path query: a regex over Sigma±.

    >>> q = TwoRPQ.parse("worksAt worksAt-")   # colleagues
    """

    regex: Regex

    @classmethod
    def parse(cls, text: str) -> "TwoRPQ":
        return cls(parse_regex(text))

    @property
    def nfa(self) -> NFA:
        return _compiled(self.regex)

    def base_symbols(self) -> frozenset[str]:
        """The underlying database relations the query mentions."""
        return frozenset(base_symbol(symbol) for symbol in self.regex.symbols())

    def evaluate(
        self, db: GraphDatabase, tracer=None, meter=None
    ) -> frozenset[tuple[Node, Node]]:
        """The answer set Q(D) (pairs connected by a conforming semipath)."""
        return evaluate_nfa_on_graph(self.nfa, db, tracer=tracer, meter=meter)

    def matches(
        self, db: GraphDatabase, source: Node, target: Node, tracer=None, meter=None
    ) -> bool:
        return target in self.targets(db, source, tracer=tracer, meter=meter)

    def targets(
        self, db: GraphDatabase, source: Node, tracer=None, meter=None
    ) -> frozenset[Node]:
        return targets_from(self.nfa, db, source, tracer=tracer, meter=meter)

    def witness_semipath(
        self, db: GraphDatabase, source: Node, target: Node, tracer=None, meter=None
    ) -> tuple | None:
        """A concrete semipath ``(y0, p1, y1, ..., pn, yn)`` or None.

        The returned alternating node/label sequence conforms to the
        query (its label word is in L(Q)) and is shortest among
        conforming semipaths — the explanation facility for query
        answers ("why is this pair in the result?").

        With the indexed kernels enabled this runs against the same
        compiled snapshot context as ``targets``/``matches`` (shortest
        by BFS parent backtracking); the object-state search below is
        the ablation baseline.
        """
        if source not in db.nodes or target not in db.nodes:
            return None
        if indexed_kernels_enabled():
            context = _graph_context(self.nfa, db, tracer=tracer)
            snapshot = context.snapshot
            with maybe_span(
                tracer, "eval-bfs", mode="witness", nodes=snapshot.num_nodes
            ):
                steps = witness_path(
                    context.compiled,
                    context.adjacency,
                    snapshot.num_nodes,
                    snapshot.node_index[source],
                    snapshot.node_index[target],
                    meter=meter,
                )
            if steps is None:
                return None
            symbols = context.compiled.symbols
            path: list = [source]
            for symbol_id, node_id in steps:
                path.append(symbols[symbol_id])
                path.append(snapshot.nodes[node_id])
            return tuple(path)
        nfa = self.nfa
        start = [(source, state) for state in nfa.initial]
        parents: dict[tuple, tuple | None] = {config: None for config in start}
        queue = deque(start)
        hit = next(
            (config for config in start if config[1] in nfa.final and config[0] == target),
            None,
        )
        while queue and hit is None:
            node, state = queue.popleft()
            for symbol in nfa.alphabet:
                next_states = nfa.successors(state, symbol)
                if not next_states:
                    continue
                for neighbor in db.successors(node, symbol):
                    for next_state in next_states:
                        config = (neighbor, next_state)
                        if config in parents:
                            continue
                        parents[config] = ((node, state), symbol)
                        if neighbor == target and next_state in nfa.final:
                            hit = config
                            break
                        queue.append(config)
                    if hit is not None:
                        break
                if hit is not None:
                    break
        if hit is None:
            return None
        steps: list = []
        cursor: tuple = hit
        while parents[cursor] is not None:
            previous, symbol = parents[cursor]  # type: ignore[misc]
            steps.append((symbol, cursor[0]))
            cursor = previous
        path: list = [cursor[0]]
        for symbol, node in reversed(steps):
            path.append(symbol)
            path.append(node)
        return tuple(path)

    def is_one_way(self) -> bool:
        return not self.regex.uses_inverse()

    def accepts_word(self, word: Word) -> bool:
        """Membership in the *language* (not the query): w in L(Q)."""
        return self.nfa.accepts(word)

    def __str__(self) -> str:
        return str(self.regex)


@dataclass(frozen=True)
class RPQ(TwoRPQ):
    """A (one-way) regular path query: inverse letters are rejected.

    >>> q = RPQ.parse("knows+")
    """

    def __post_init__(self) -> None:
        if self.regex.uses_inverse():
            raise ValueError(
                f"RPQ may not use inverse letters; got {self.regex}. "
                "Use TwoRPQ for two-way navigation."
            )

    def as_two_way(self) -> TwoRPQ:
        return TwoRPQ(self.regex)
