"""Regular path queries and their two-way extension (Section 3.1).

An RPQ is a regular expression over the edge alphabet Sigma; its answer
over a graph database D is the set of node pairs connected by a directed
path spelling a word of the language.  A 2RPQ additionally uses inverse
letters ``r-`` and is evaluated over *semipaths* — navigations that may
traverse edges backwards.

Evaluation is the classical product construction: BFS over
``(node, automaton state)`` configurations, one search per source node.
This is polynomial in ``|D| * |A|`` (the combined complexity of RPQ
evaluation), and it is shared by both classes because the graph
database's ``successors`` method already interprets inverse letters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..automata.alphabet import base_symbol, is_inverse
from ..automata.dfa import reduce_nfa
from ..automata.indexed import (
    IndexedNFA,
    bits,
    graph_product_targets,
    indexed_kernels_enabled,
)
from ..automata.nfa import NFA, Word
from ..automata.regex import Regex, parse_regex
from ..cache import regex_nfa_cache
from ..graphdb.database import GraphDatabase, Node


def _compiled(regex: Regex) -> NFA:
    """Reduced NFA for a regex (cached; regexes are frozen dataclasses)."""
    return regex_nfa_cache.get_or_compute(regex, lambda: reduce_nfa(regex.to_nfa()))


def _graph_context(
    nfa: NFA, db: GraphDatabase
) -> tuple[IndexedNFA, tuple[Node, ...], dict[Node, int], list[list[list[int]]]]:
    """Compile the query automaton and the graph for the bitset BFS kernel.

    The adjacency table pre-resolves inverse letters through the
    database's backward index: ``adjacency[symbol_id][node_id]`` lists
    the node ids one navigation step away.  Built once per evaluation
    and shared across all source nodes.
    """
    compiled = IndexedNFA.from_nfa(nfa)
    nodes = tuple(sorted(db.nodes, key=repr))
    node_index = {node: i for i, node in enumerate(nodes)}
    adjacency = [
        [
            [node_index[neighbor] for neighbor in db.successors(node, symbol)]
            for node in nodes
        ]
        for symbol in compiled.symbols
    ]
    return compiled, nodes, node_index, adjacency


def evaluate_nfa_on_graph(nfa: NFA, db: GraphDatabase) -> frozenset[tuple[Node, Node]]:
    """All pairs (x, y) connected by a semipath spelling a word of L(nfa)."""
    if indexed_kernels_enabled():
        compiled, nodes, _, adjacency = _graph_context(nfa, db)
        return frozenset(
            (source, nodes[target])
            for i, source in enumerate(nodes)
            for target in bits(
                graph_product_targets(compiled, adjacency, len(nodes), i)
            )
        )
    answers: set[tuple[Node, Node]] = set()
    for source in db.nodes:
        for target in targets_from(nfa, db, source):
            answers.add((source, target))
    return frozenset(answers)


def targets_from(nfa: NFA, db: GraphDatabase, source: Node) -> frozenset[Node]:
    """Nodes reachable from *source* along words of L(nfa) (product BFS)."""
    if source not in db.nodes:
        return frozenset()
    if indexed_kernels_enabled():
        compiled, nodes, node_index, adjacency = _graph_context(nfa, db)
        mask = graph_product_targets(
            compiled, adjacency, len(nodes), node_index[source]
        )
        return frozenset(nodes[i] for i in bits(mask))
    start = {(source, state) for state in nfa.initial}
    seen = set(start)
    queue = deque(start)
    found: set[Node] = set()
    while queue:
        node, state = queue.popleft()
        if state in nfa.final:
            found.add(node)
        for symbol in nfa.alphabet:
            next_states = nfa.successors(state, symbol)
            if not next_states:
                continue
            for neighbor in db.successors(node, symbol):
                for next_state in next_states:
                    config = (neighbor, next_state)
                    if config not in seen:
                        seen.add(config)
                        queue.append(config)
    return frozenset(found)


@dataclass(frozen=True)
class TwoRPQ:
    """A two-way regular path query: a regex over Sigma±.

    >>> q = TwoRPQ.parse("worksAt worksAt-")   # colleagues
    """

    regex: Regex

    @classmethod
    def parse(cls, text: str) -> "TwoRPQ":
        return cls(parse_regex(text))

    @property
    def nfa(self) -> NFA:
        return _compiled(self.regex)

    def base_symbols(self) -> frozenset[str]:
        """The underlying database relations the query mentions."""
        return frozenset(base_symbol(symbol) for symbol in self.regex.symbols())

    def evaluate(self, db: GraphDatabase) -> frozenset[tuple[Node, Node]]:
        """The answer set Q(D) (pairs connected by a conforming semipath)."""
        return evaluate_nfa_on_graph(self.nfa, db)

    def matches(self, db: GraphDatabase, source: Node, target: Node) -> bool:
        return target in self.targets(db, source)

    def targets(self, db: GraphDatabase, source: Node) -> frozenset[Node]:
        return targets_from(self.nfa, db, source)

    def witness_semipath(
        self, db: GraphDatabase, source: Node, target: Node
    ) -> tuple | None:
        """A concrete semipath ``(y0, p1, y1, ..., pn, yn)`` or None.

        The returned alternating node/label sequence conforms to the
        query (its label word is in L(Q)) and is shortest among
        conforming semipaths — the explanation facility for query
        answers ("why is this pair in the result?").
        """
        if source not in db.nodes:
            return None
        nfa = self.nfa
        start = [(source, state) for state in nfa.initial]
        parents: dict[tuple, tuple | None] = {config: None for config in start}
        queue = deque(start)
        hit = next(
            (config for config in start if config[1] in nfa.final and config[0] == target),
            None,
        )
        while queue and hit is None:
            node, state = queue.popleft()
            for symbol in nfa.alphabet:
                next_states = nfa.successors(state, symbol)
                if not next_states:
                    continue
                for neighbor in db.successors(node, symbol):
                    for next_state in next_states:
                        config = (neighbor, next_state)
                        if config in parents:
                            continue
                        parents[config] = ((node, state), symbol)
                        if neighbor == target and next_state in nfa.final:
                            hit = config
                            break
                        queue.append(config)
                    if hit is not None:
                        break
                if hit is not None:
                    break
        if hit is None:
            return None
        steps: list = []
        cursor: tuple = hit
        while parents[cursor] is not None:
            previous, symbol = parents[cursor]  # type: ignore[misc]
            steps.append((symbol, cursor[0]))
            cursor = previous
        path: list = [cursor[0]]
        for symbol, node in reversed(steps):
            path.append(symbol)
            path.append(node)
        return tuple(path)

    def is_one_way(self) -> bool:
        return not self.regex.uses_inverse()

    def accepts_word(self, word: Word) -> bool:
        """Membership in the *language* (not the query): w in L(Q)."""
        return self.nfa.accepts(word)

    def __str__(self) -> str:
        return str(self.regex)


@dataclass(frozen=True)
class RPQ(TwoRPQ):
    """A (one-way) regular path query: inverse letters are rejected.

    >>> q = RPQ.parse("knows+")
    """

    def __post_init__(self) -> None:
        if self.regex.uses_inverse():
            raise ValueError(
                f"RPQ may not use inverse letters; got {self.regex}. "
                "Use TwoRPQ for two-way navigation."
            )

    def as_two_way(self) -> TwoRPQ:
        return TwoRPQ(self.regex)
