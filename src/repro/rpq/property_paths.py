"""SPARQL 1.1 property-path syntax for 2RPQs.

Graph-database practice (the paper's §1 motivation) writes path queries
as SPARQL property paths.  This adapter translates the regular-path
fragment of that syntax into :class:`repro.rpq.rpq.TwoRPQ`:

=============  ==============================  ===================
SPARQL         meaning                          here
=============  ==============================  ===================
``iri``        an edge label                    a base symbol
``^p``         inverse path                     inverse letters
``p1 / p2``    sequence                         concatenation
``p1 | p2``    alternative                      union
``p*``         zero or more                     Kleene star
``p+``         one or more                      plus
``p?``         zero or one                      optional
``(p)``        grouping                         grouping
=============  ==============================  ===================

Negated property sets (``!p``) and the entailment-specific forms are
outside the regular fragment and are rejected with a clear error.
Labels may be bare identifiers or ``prefix:local`` names (the colon is
kept as part of the symbol).
"""

from __future__ import annotations

import re

from ..automata.regex import (
    Concat,
    Optional_,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
)
from .rpq import RPQ, TwoRPQ


class PropertyPathError(ValueError):
    """Raised when a property path cannot be parsed or is non-regular."""


_TOKEN = re.compile(
    r"\s*(?:(?P<iri>[A-Za-z_][A-Za-z0-9_]*(?::[A-Za-z_][A-Za-z0-9_]*)?)"
    r"|(?P<caret>\^)"
    r"|(?P<slash>/)"
    r"|(?P<pipe>\|)"
    r"|(?P<star>\*)"
    r"|(?P<plus>\+)"
    r"|(?P<opt>\?)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<bang>!))"
)


def _tokenize(text: str):
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise PropertyPathError(f"cannot tokenize {remainder!r} in {text!r}")
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        yield kind, match.group(kind)
    yield "end", ""


class _Parser:
    """Grammar: alt := seq ('|' seq)*;  seq := unary ('/' unary)*;
    unary := '^' unary | primary postfix*;  primary := iri | '(' alt ')'."""

    def __init__(self, text: str) -> None:
        self.tokens = list(_tokenize(text))
        self.index = 0
        self.text = text

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def parse(self) -> Regex:
        node = self.parse_alt()
        kind, value = self.peek()
        if kind != "end":
            raise PropertyPathError(f"unexpected {value!r} in {self.text!r}")
        return node

    def parse_alt(self) -> Regex:
        node = self.parse_seq()
        while self.peek()[0] == "pipe":
            self.advance()
            node = Union(node, self.parse_seq())
        return node

    def parse_seq(self) -> Regex:
        node = self.parse_unary()
        while self.peek()[0] == "slash":
            self.advance()
            node = Concat(node, self.parse_unary())
        return node

    def parse_unary(self) -> Regex:
        if self.peek()[0] == "caret":
            self.advance()
            return _invert(self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Regex:
        node = self.parse_primary()
        while True:
            kind = self.peek()[0]
            if kind == "star":
                self.advance()
                node = Star(node)
            elif kind == "plus":
                self.advance()
                node = Plus(node)
            elif kind == "opt":
                self.advance()
                node = Optional_(node)
            else:
                return node

    def parse_primary(self) -> Regex:
        kind, value = self.advance()
        if kind == "iri":
            return Sym(value)
        if kind == "lparen":
            node = self.parse_alt()
            kind, value = self.advance()
            if kind != "rparen":
                raise PropertyPathError(f"expected ')' in {self.text!r}")
            return node
        if kind == "bang":
            raise PropertyPathError(
                "negated property sets (!p) are not regular path queries"
            )
        raise PropertyPathError(f"unexpected {value or kind!r} in {self.text!r}")


def _invert(node: Regex) -> Regex:
    """``^path``: the inverse of the whole sub-path."""
    return node.inverse()


def from_property_path(text: str) -> TwoRPQ:
    """Parse a SPARQL property path into a 2RPQ.

    >>> from_property_path("knows/^worksAt").evaluate(db)   # doctest: +SKIP
    """
    regex = _Parser(text).parse()
    query = TwoRPQ(regex)
    return RPQ(regex) if query.is_one_way() else query


def to_property_path(query: TwoRPQ) -> str:
    """Render a 2RPQ as SPARQL property-path text (inverse of the parser
    up to grouping; the result always re-parses to the same language)."""
    return _render(query.regex)


def _render(node: Regex, parent: str = "alt") -> str:
    from ..automata.alphabet import base_symbol, is_inverse
    from ..automata.regex import EmptySet, Epsilon

    if isinstance(node, Sym):
        if is_inverse(node.symbol):
            return f"^{base_symbol(node.symbol)}"
        return node.symbol
    if isinstance(node, Union):
        text = f"{_render(node.left, 'alt')}|{_render(node.right, 'alt')}"
        return f"({text})" if parent != "alt" else text
    if isinstance(node, Concat):
        text = f"{_render(node.left, 'seq')}/{_render(node.right, 'seq')}"
        return f"({text})" if parent not in ("alt", "seq") else text
    if isinstance(node, Star):
        return f"{_render(node.body, 'postfix')}*"
    if isinstance(node, Plus):
        return f"{_render(node.body, 'postfix')}+"
    if isinstance(node, Optional_):
        return f"{_render(node.body, 'postfix')}?"
    if isinstance(node, Epsilon):
        # SPARQL has no epsilon literal; x? over an impossible... use a
        # zero-length path via an empty-group trick is unavailable, so
        # emit the standard workaround (p?)-style is impossible without
        # p.  Reject explicitly.
        raise PropertyPathError("epsilon has no SPARQL property-path form")
    if isinstance(node, EmptySet):
        raise PropertyPathError("the empty language has no property-path form")
    raise PropertyPathError(f"unknown node {node!r}")  # pragma: no cover
