"""Answering RPQs using views — the paper's query-reuse motivation.

Section 1 lists query reuse and data integration among the uses of
query containment, citing the authors' own "query processing using
views for regular path queries" [12].  This module implements the
classical construction for one-way RPQs:

Given a query ``Q`` and materialized views ``V1..Vk`` (all RPQs over
Sigma), the **maximally contained rewriting** (MCR) is the largest
language over the *view alphabet* {v1..vk} whose expansions stay inside
``L(Q)``:

    MCR(Q, V) = { v_{i1} .. v_{im} : L(V_{i1}) ... L(V_{im}) ⊆ L(Q) }

Construction (the [12] automaton, built from parts this package already
has): let ``A`` be a complete DFA for the *complement* of ``L(Q)``.  A
view word is *bad* iff some choice of witness words drives ``A`` from
its start into an accepting (complement) state.  Summarize each view
``V`` by the relation ``R_V = {(s, t) : exists w in L(V), A: s -w-> t}``
(computable from the product of ``A`` with ``V``'s NFA); the bad words
are then a regular language over the view alphabet, and

    MCR = complement(bad words)  —  regular, hence itself an RPQ.

``rewrite`` returns the MCR as an automaton/regex over view names;
``answer_using_views`` evaluates it over the *view graph* (one edge per
materialized view tuple), which by construction yields only certain
answers: every answer it returns is an answer of ``Q`` on any database
consistent with the views (sound); and it is the best such rewriting
(complete among rewritings that only compose whole views).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping

from ..automata.dfa import DFA, determinize, nfa_contains, reduce_nfa
from ..automata.nfa import NFA
from ..automata.regex import Regex
from ..automata.state_elimination import nfa_to_regex
from ..graphdb.database import GraphDatabase, Node
from .rpq import RPQ, evaluate_nfa_on_graph


@dataclass(frozen=True)
class Rewriting:
    """The maximally contained rewriting of a query over view names.

    Attributes:
        automaton: NFA over the view alphabet accepting the MCR.
        query: the original query.
        views: the view definitions, keyed by view name.
    """

    automaton: NFA
    query: RPQ
    views: Mapping[str, RPQ]

    @property
    def is_empty(self) -> bool:
        """No composition of whole views is contained in the query."""
        return self.automaton.is_empty()

    def is_exact(self) -> bool:
        """Does the rewriting's expansion cover all of L(Q)?

        True iff substituting each view name by its language yields
        exactly L(Q) (then view answers reproduce the query answers on
        the view graph of any database).
        """
        expansion = _expand(self.automaton, self.views)
        return nfa_contains(self.query.nfa, expansion, self.query.nfa.alphabet)

    def to_regex(self) -> Regex:
        """The rewriting as a regular expression over view names."""
        return nfa_to_regex(self.automaton)


def _transition_relation(view: RPQ, complement: DFA) -> frozenset[tuple]:
    """``R_V``: DFA state pairs connected by some word of the view.

    One product BFS per DFA origin state; the DFA here is the complement
    of a reduced query automaton, so this stays small.
    """
    pairs: set[tuple] = set()
    for origin in complement.states:
        frontier = {(origin, nfa_state) for nfa_state in view.nfa.initial}
        visited = set(frontier)
        queue = deque(frontier)
        while queue:
            dfa_state, nfa_state = queue.popleft()
            if nfa_state in view.nfa.final:
                pairs.add((origin, dfa_state))
            for symbol in view.nfa.alphabet:
                if (dfa_state, symbol) not in complement.transitions:
                    continue
                next_dfa = complement.step(dfa_state, symbol)
                for next_nfa in view.nfa.successors(nfa_state, symbol):
                    config = (next_dfa, next_nfa)
                    if config not in visited:
                        visited.add(config)
                        queue.append(config)
    return frozenset(pairs)


def rewrite(query: RPQ, views: Mapping[str, RPQ]) -> Rewriting:
    """Compute the maximally contained rewriting of *query* over *views*.

    All queries must be one-way RPQs; view names form the rewriting's
    alphabet and must not clash with each other.
    """
    if not query.is_one_way():
        raise ValueError("view-based rewriting is implemented for one-way RPQs")
    for name, view in views.items():
        if not view.is_one_way():
            raise ValueError(f"view {name!r} is not a one-way RPQ")
    alphabet = tuple(
        sorted(
            set(query.nfa.alphabet)
            | {s for view in views.values() for s in view.nfa.alphabet}
        )
    )
    complement = determinize(query.nfa, alphabet).complement()
    relations = {
        name: _transition_relation(view, complement) for name, view in views.items()
    }
    # Bad-word NFA over view names: runs of the complement DFA summarized
    # per view; accepting = some expansion escapes L(Q).
    transitions = [
        (source, name, target)
        for name, pairs in relations.items()
        for source, target in pairs
    ]
    bad = NFA.build(
        tuple(sorted(views)),
        complement.states,
        [complement.initial],
        complement.final,
        transitions,
    )
    from ..automata.dfa import complement_nfa

    mcr = reduce_nfa(complement_nfa(bad, tuple(sorted(views))))
    return Rewriting(mcr, query, dict(views))


def _expand(automaton: NFA, views: Mapping[str, RPQ]) -> NFA:
    """Substitute each view name in *automaton* by the view's NFA.

    Each view-labeled host edge is replaced by a fresh copy of the
    view's automaton, spliced in with epsilon transitions (eliminated at
    the end), so ``L(result) = union over host words of the
    concatenation of the views' languages``.
    """
    from ..automata.nfa import EPSILON, from_epsilon_nfa

    eps_transitions: list[tuple] = []
    states: set = set(automaton.states)
    alphabet: set[str] = set()
    for index, (source, name, target) in enumerate(
        sorted(automaton.edges(), key=repr)
    ):
        view_nfa = views[name].nfa
        alphabet.update(view_nfa.alphabet)
        tagged = {state: ("exp", index, state) for state in view_nfa.states}
        states.update(tagged.values())
        for a, symbol, b in view_nfa.edges():
            eps_transitions.append((tagged[a], symbol, tagged[b]))
        for initial in view_nfa.initial:
            eps_transitions.append((source, EPSILON, tagged[initial]))
        for final in view_nfa.final:
            eps_transitions.append((tagged[final], EPSILON, target))
    return from_epsilon_nfa(
        tuple(sorted(alphabet)),
        states,
        automaton.initial,
        automaton.final,
        eps_transitions,
    )


def view_graph(
    views: Mapping[str, RPQ], db: GraphDatabase
) -> GraphDatabase:
    """Materialize the views: one ``name``-labeled edge per view answer."""
    out = GraphDatabase()
    for node in db.nodes:
        out.add_node(node)
    for name, view in views.items():
        for source, target in view.evaluate(db):
            out.add_edge(source, name, target)
    return out


def answer_using_views(
    rewriting: Rewriting, materialized: GraphDatabase
) -> frozenset[tuple[Node, Node]]:
    """Evaluate the rewriting over a materialized view graph.

    Sound: every returned pair is an answer of the original query on any
    database whose views contain the materialized tuples.
    """
    return evaluate_nfa_on_graph(rewriting.automaton, materialized)
