"""Containment for RPQs and 2RPQs (Lemmas 1-2, Theorem 5).

RPQs: Lemma 1 reduces query containment to language containment, solved
by the paper's five-step automata pipeline (PSPACE).

2RPQs: Lemma 1 *fails* (the paper's ``p ⊑ p p- p`` example); Lemma 2
repairs it via folding: ``Q1 ⊑ Q2 iff L(Q1) ⊆ fold(L(Q2))``.  The
pipeline is then Theorem 5's: build the fold 2NFA (Lemma 3), complement
it (Lemma 4 or the Shepherdson baseline), intersect with Q1's NFA on the
fly, and search for an accepted word.

Every refutation is converted into a concrete counterexample *database*:
the canonical semipath database of the witness word ``u``, on which
``Q1`` answers the endpoints but ``Q2`` does not — semipaths in a path
database spell exactly the words that fold onto ``u``, which is the
content of Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..automata.alphabet import Alphabet, base_symbol
from ..automata.complement import LazyComplement, complement_two_nfa
from ..automata.dfa import containment_counterexample
from ..automata.fold import fold_two_nfa
from ..automata.nfa import NFA, Word
from ..automata.onthefly import SearchStats, find_accepted_word
from ..automata.shepherdson import LazyShepherdsonComplement
from ..budget import Budget, BudgetExhausted, as_budget, bounded_result, deadline_scope
from ..obs.trace import maybe_span
from ..report import ContainmentResult, Counterexample, EquivalenceResult, Verdict
from ..graphdb.database import canonical_database_of_word
from .rpq import RPQ, TwoRPQ

TwoRPQMethod = Literal["shepherdson", "lemma4-onthefly", "lemma4-materialized"]


def _combined_alphabet(q1: TwoRPQ, q2: TwoRPQ) -> Alphabet:
    return Alphabet(tuple(sorted(q1.base_symbols() | q2.base_symbols())))


def word_counterexample(word: Word) -> Counterexample:
    """The canonical semipath database refuting containment via *word*."""
    db, source, target = canonical_database_of_word(word)
    return Counterexample(db, (source, target))


def rpq_contained(
    q1: RPQ,
    q2: RPQ,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """Lemma 1 pipeline: exact, via language containment over Sigma.

    The witness word (if any) is materialized as a path database on
    which ``(0, n) in Q1(D) - Q2(D)``.  An optional *budget* bounds the
    product search; exhaustion yields a structured bounded verdict
    rather than an exception.  An optional *tracer* records one span per
    automata-pipeline stage.  *kernel* selects the language-inclusion
    search (``"subset" | "antichain" | "auto"``); the choice and its
    frontier statistics are reported in ``details["kernel"]`` on every
    return path.
    """
    for query in (q1, q2):
        if not query.is_one_way():
            raise ValueError("rpq_contained expects one-way queries; use two_rpq_contained")
    alphabet = _combined_alphabet(q1, q2).symbols
    meter = None if budget is None or budget.is_null else budget.start()
    kstats: dict = {"requested": kernel}
    try:
        witness = containment_counterexample(
            q1.nfa, q2.nfa, alphabet, meter=meter, tracer=tracer,
            kernel=kernel, kernel_stats=kstats,
        )
    except BudgetExhausted as exc:
        return bounded_result("rpq-language", exc, meter, details={"kernel": kstats})
    if witness is None:
        return ContainmentResult(
            Verdict.HOLDS, "rpq-language", details={"kernel": kstats}
        )
    return ContainmentResult(
        Verdict.REFUTED,
        "rpq-language",
        word_counterexample(witness),
        details={"kernel": kstats},
    )


def two_rpq_contained(
    q1: TwoRPQ,
    q2: TwoRPQ,
    method: TwoRPQMethod = "shepherdson",
    max_configs: int | None = None,
    stats: SearchStats | None = None,
    budget: Budget | None = None,
    tracer=None,
    kernel: str = "auto",
) -> ContainmentResult:
    """Theorem 5 pipeline: exact 2RPQ containment via folding.

    Args:
        q1, q2: the queries (one-way queries are fine too).
        method: which complementation to use for ``fold(L(Q2))``:

            - ``"shepherdson"`` (default): deterministic table
              construction; complement is free, product exploration is
              one successor per step.  The production path.
            - ``"lemma4-onthefly"``: the paper-faithful Lemma 4
              complement explored lazily inside the product search.
            - ``"lemma4-materialized"``: Lemma 4 complement fully built,
              then an explicit product; only viable for tiny queries,
              used by benchmark E4/E5 as the measured upper bound.
        max_configs: deprecated alias for ``budget=Budget(max_configs=...)``
            (a bound on product configurations; for the materialized
            method it also bounds the complement's state count).
        stats: optional search instrumentation.
        budget: optional :class:`repro.budget.Budget`.  Exhaustion of
            any resource returns a structured bounded/inconclusive
            verdict — this procedure never raises on budget exhaustion.
        tracer: optional :class:`repro.obs.trace.Tracer`; records a
            ``fold`` span plus the method-specific search/complement
            stage spans.
        kernel: the product-search kernel (``"subset" | "antichain" |
            "auto"``) for the on-the-fly methods; the materialized
            method ignores it (recorded honestly in
            ``details["kernel"]``).
    """
    from ..automata.antichain import resolve_kernel

    resolve_kernel(kernel)  # reject typos before any automata work
    eff = as_budget(budget, max_configs=max_configs, max_states=max_configs)
    meter = None if eff.is_null else eff.start()
    method_name = f"2rpq-fold-{method}"
    sigma_pm = _combined_alphabet(q1, q2).two_way
    kstats: dict = {"requested": kernel}
    try:
        with deadline_scope(eff):
            with maybe_span(tracer, "fold", nfa_states=q2.nfa.num_states) as span:
                folded = fold_two_nfa(q2.nfa, sigma_pm)
                span.annotate(two_nfa_states=folded.num_states)
            left = q1.nfa
            if method == "shepherdson":
                witness = find_accepted_word(
                    [left, LazyShepherdsonComplement(folded)],
                    sigma_pm,
                    stats=stats,
                    meter=meter,
                    tracer=tracer,
                    kernel=kernel,
                    kernel_stats=kstats,
                )
            elif method == "lemma4-onthefly":
                witness = find_accepted_word(
                    [left, LazyComplement(folded)],
                    sigma_pm,
                    stats=stats,
                    meter=meter,
                    tracer=tracer,
                    kernel=kernel,
                    kernel_stats=kstats,
                )
            elif method == "lemma4-materialized":
                kstats.update(selected="subset", pipeline="materialized")
                complement = complement_two_nfa(
                    folded, max_states=eff.max_states, meter=meter, tracer=tracer
                )
                if meter is not None:
                    meter.check_deadline()
                with maybe_span(tracer, "product") as span:
                    product = left.product(complement)
                    span.count("configs", product.num_states)
                if meter is not None:
                    meter.charge("configs", product.num_states)
                with maybe_span(tracer, "emptiness-search"):
                    witness = product.shortest_word()
            else:
                raise ValueError(f"unknown method {method!r}")
    except BudgetExhausted as exc:
        return bounded_result(method_name, exc, meter, details={"kernel": kstats})
    if witness is None:
        return ContainmentResult(
            Verdict.HOLDS, method_name, details={"kernel": kstats}
        )
    return ContainmentResult(
        Verdict.REFUTED,
        method_name,
        word_counterexample(witness),
        details={"kernel": kstats},
    )


def two_rpq_equivalent(
    q1: TwoRPQ,
    q2: TwoRPQ,
    method: TwoRPQMethod = "shepherdson",
    exact: bool = False,
    budget: Budget | None = None,
) -> EquivalenceResult:
    """Equivalence of 2RPQs, both directions via :func:`two_rpq_contained`.

    Returns an :class:`repro.report.EquivalenceResult` (truthy like the
    bool this used to return).  With ``exact=True``, a direction that
    was only established up to a bound does not count as holding; the
    result's ``bounded_directions`` names any such direction.
    """
    return EquivalenceResult(
        two_rpq_contained(q1, q2, method, budget=budget),
        two_rpq_contained(q2, q1, method, budget=budget),
        exact=exact,
    )


@dataclass(frozen=True)
class DivergenceExample:
    """A pair witnessing that Lemma 1 fails for 2RPQs (Section 3.2).

    ``query_containment_holds`` with ``language_containment_fails`` is
    the paper's point: the theories of regular expressions over words
    and over graphs diverge once inverses appear.
    """

    q1: TwoRPQ
    q2: TwoRPQ
    query_containment_holds: bool
    language_containment_holds: bool


def paper_divergence_example() -> DivergenceExample:
    """The paper's own example: Q1 = p, Q2 = p p- p."""
    q1 = TwoRPQ.parse("p")
    q2 = TwoRPQ.parse("p p- p")
    query = two_rpq_contained(q1, q2).holds
    sigma_pm = _combined_alphabet(q1, q2).two_way
    language = containment_counterexample(q1.nfa, q2.nfa, sigma_pm) is None
    return DivergenceExample(q1, q2, query, language)
