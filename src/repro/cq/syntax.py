"""Syntax of conjunctive queries and unions thereof (Section 2.1).

A conjunctive query (CQ) is a positive existential conjunctive formula
``theta(x1..xk) = exists y1..ym . a1 & ... & an`` with free
(*distinguished*) variables ``x1..xk``.  We represent terms as either
:class:`Var` objects or arbitrary hashable constants, atoms as predicate
name plus term tuple, and a CQ as head variables plus atom tuple.
A UCQ is a tuple of CQs of equal arity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from ..relational.instance import Instance

Term = Hashable  # a Var or a constant


@dataclass(frozen=True, order=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


def is_var(term: Term) -> bool:
    return isinstance(term, Var)


@dataclass(frozen=True)
class Atom:
    """An atom ``predicate(t1, ..., tk)`` over variables and constants."""

    predicate: str
    args: tuple[Term, ...]

    def variables(self) -> tuple[Var, ...]:
        return tuple(arg for arg in self.args if is_var(arg))

    def substitute(self, mapping: Mapping[Var, Term]) -> "Atom":
        return Atom(
            self.predicate,
            tuple(mapping.get(arg, arg) if is_var(arg) else arg for arg in self.args),
        )

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) if is_var(a) else repr(a) for a in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class CQ:
    """A conjunctive query: ``head_vars`` free, body variables existential.

    >>> x, y, z = Var("x"), Var("y"), Var("z")
    >>> path2 = CQ((x, z), (Atom("E", (x, y)), Atom("E", (y, z))))
    """

    head_vars: tuple[Var, ...]
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        body_vars = {var for atom in self.body for var in atom.variables()}
        missing = [var for var in self.head_vars if var not in body_vars]
        if missing:
            raise ValueError(
                f"head variables {missing} do not occur in the body (unsafe query)"
            )

    @property
    def arity(self) -> int:
        return len(self.head_vars)

    def variables(self) -> frozenset[Var]:
        return frozenset(var for atom in self.body for var in atom.variables())

    def existential_variables(self) -> frozenset[Var]:
        return self.variables() - set(self.head_vars)

    def predicates(self) -> frozenset[str]:
        return frozenset(atom.predicate for atom in self.body)

    def substitute(self, mapping: Mapping[Var, Term]) -> "CQ":
        """Apply a variable substitution; head variables must stay variables."""
        new_head = tuple(mapping.get(var, var) for var in self.head_vars)
        if not all(is_var(term) for term in new_head):
            raise ValueError("substitution must keep head variables as variables")
        return CQ(new_head, tuple(atom.substitute(mapping) for atom in self.body))

    def rename_apart(self, taken: Iterable[Var]) -> "CQ":
        """Rename body variables away from *taken* (head kept fixed)."""
        taken_names = {var.name for var in taken}
        mapping: dict[Var, Var] = {}
        counter = itertools.count()
        for var in sorted(self.existential_variables()):
            if var.name in taken_names:
                while True:
                    candidate = Var(f"{var.name}_{next(counter)}")
                    if candidate.name not in taken_names and candidate not in mapping.values():
                        break
                mapping[var] = candidate
        return self.substitute(mapping) if mapping else self

    def canonical_instance(self) -> tuple[Instance, tuple[Term, ...]]:
        """The canonical (frozen) database of the query.

        Each variable becomes a fresh constant; constants stay
        themselves.  Returns the instance together with the head tuple's
        image.  Chandra-Merlin containment tests evaluate the candidate
        container over this instance.
        """
        freeze = {var: ("_frozen", var.name) for var in self.variables()}
        instance = Instance()
        for atom in self.body:
            instance.add(
                atom.predicate,
                tuple(freeze[arg] if is_var(arg) else arg for arg in atom.args),
            )
        head = tuple(freeze[var] for var in self.head_vars)
        return instance, head

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head_vars)
        body = " & ".join(repr(a) for a in self.body)
        return f"CQ({head} :- {body})"


@dataclass(frozen=True)
class UCQ:
    """A union of conjunctive queries of equal arity (Section 2.1)."""

    disjuncts: tuple[CQ, ...]

    def __post_init__(self) -> None:
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        arities = {cq.arity for cq in self.disjuncts}
        if len(arities) != 1:
            raise ValueError(f"disjuncts disagree on arity: {sorted(arities)}")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def predicates(self) -> frozenset[str]:
        return frozenset().union(*(cq.predicates() for cq in self.disjuncts))

    def __iter__(self) -> Iterator[CQ]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:
        return " | ".join(repr(cq) for cq in self.disjuncts)


def cq_from_strings(head: str, body: Iterable[str]) -> CQ:
    """Terse CQ syntax: ``cq_from_strings("x,z", ["E(x,y)", "E(y,z)"])``.

    Tokens starting with a lowercase letter are variables; tokens
    starting with a digit or quote are constants (ints or strings).
    """
    atoms = tuple(_parse_atom(text) for text in body)
    head_vars = tuple(
        _parse_term(token.strip()) for token in head.split(",") if token.strip()
    )
    for term in head_vars:
        if not is_var(term):
            raise ValueError(f"head terms must be variables, got {term!r}")
    return CQ(head_vars, atoms)  # type: ignore[arg-type]


def _parse_atom(text: str) -> Atom:
    text = text.strip()
    open_paren = text.index("(")
    if not text.endswith(")"):
        raise ValueError(f"malformed atom {text!r}")
    predicate = text[:open_paren].strip()
    inner = text[open_paren + 1 : -1]
    args = tuple(_parse_term(token.strip()) for token in inner.split(",") if token.strip())
    return Atom(predicate, args)


def _parse_term(token: str) -> Term:
    if token.startswith(("'", '"')) and token.endswith(("'", '"')) and len(token) >= 2:
        return token[1:-1]
    if token.lstrip("-").isdigit():
        return int(token)
    return Var(token)
