"""CQ minimization: computing cores.

A CQ is *minimal* (a core) when no proper subquery is equivalent to it.
By Chandra-Merlin theory the core is unique up to isomorphism and can be
found by repeatedly dropping atoms whose removal preserves equivalence:
removal can only enlarge the answer set, so it suffices to check that
the smaller query is still contained in the original (one homomorphism
test per candidate atom).

Minimization is the classical payoff of containment for optimization
(the paper's Section 4.2 theme): fewer atoms means fewer joins.
"""

from __future__ import annotations

from .containment import cq_contained
from .syntax import CQ


def minimize_cq(cq: CQ) -> CQ:
    """The core of *cq*: an equivalent subquery with no removable atom.

    >>> from repro.cq.syntax import cq_from_strings
    >>> redundant = cq_from_strings("x", ["E(x,y)", "E(x,z)"])
    >>> len(minimize_cq(redundant).body)
    1
    """
    current = cq
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            candidate_body = current.body[:index] + current.body[index + 1 :]
            head_vars = set(current.head_vars)
            remaining_vars = {
                var for atom in candidate_body for var in atom.variables()
            }
            if not head_vars <= remaining_vars:
                continue  # dropping this atom would unsafely lose a head variable
            candidate = CQ(current.head_vars, candidate_body)
            # Removal only enlarges answers, so equivalence needs just
            # candidate ⊆ current.
            if cq_contained(candidate, current):
                current = candidate
                changed = True
                break
    return current


def is_minimal(cq: CQ) -> bool:
    """True iff *cq* equals its own core (atom-count-wise)."""
    return len(minimize_cq(cq).body) == len(cq.body)


def minimize_ucq(ucq: "UCQ") -> "UCQ":
    """Minimize each disjunct, then drop disjuncts subsumed by the rest.

    Pruning re-tests against the *shrinking* union, so exactly one
    member of every equivalence class of disjuncts survives (dropping
    both of two equivalent disjuncts would change the query).
    """
    from .containment import ucq_contained
    from .syntax import UCQ

    disjuncts = [minimize_cq(disjunct) for disjunct in ucq]
    index = 0
    while index < len(disjuncts) and len(disjuncts) > 1:
        rest = disjuncts[:index] + disjuncts[index + 1 :]
        if ucq_contained(disjuncts[index], UCQ(tuple(rest))).holds:
            disjuncts = rest
        else:
            index += 1
    return UCQ(tuple(disjuncts))
