"""Conjunctive queries and unions (Section 2.1): syntax, evaluation,
Chandra-Merlin / Sagiv-Yannakakis containment, and core minimization."""

from .containment import (
    CQContainmentResult,
    cq_contained,
    cq_equivalent,
    ucq_contained,
    ucq_equivalent,
)
from .evaluation import (
    bindings,
    evaluate_cq,
    evaluate_ucq,
    satisfies,
    satisfies_ucq,
)
from .homomorphism import (
    cq_homomorphism,
    endomorphism_image,
    has_homomorphism,
    homomorphism_to_instance,
)
from .minimization import is_minimal, minimize_cq, minimize_ucq
from .syntax import CQ, UCQ, Atom, Term, Var, cq_from_strings, is_var

__all__ = [
    "CQContainmentResult",
    "cq_contained",
    "cq_equivalent",
    "ucq_contained",
    "ucq_equivalent",
    "bindings",
    "evaluate_cq",
    "evaluate_ucq",
    "satisfies",
    "satisfies_ucq",
    "cq_homomorphism",
    "endomorphism_image",
    "has_homomorphism",
    "homomorphism_to_instance",
    "is_minimal",
    "minimize_ucq",
    "minimize_cq",
    "CQ",
    "UCQ",
    "Atom",
    "Term",
    "Var",
    "cq_from_strings",
    "is_var",
]
