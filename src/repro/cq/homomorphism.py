"""Homomorphisms between conjunctive queries and into instances.

The Chandra-Merlin theorem (the paper's [18]): ``Q1 ⊆ Q2`` for CQs iff
there is a homomorphism from ``Q2`` to ``Q1`` that is the identity on
distinguished variables — equivalently, iff the head of ``Q1`` is in
``Q2`` evaluated over ``Q1``'s canonical database.  We implement the
search by exactly that reduction, reusing the evaluation engine, and
also expose the mapping itself for the minimization code.
"""

from __future__ import annotations

from typing import Mapping

from ..relational.instance import Instance
from .evaluation import bindings, satisfies
from .syntax import CQ, Atom, Term, Var, is_var


def homomorphism_to_instance(
    cq: CQ, instance: Instance, head_image: tuple[Term, ...]
) -> dict[Var, Term] | None:
    """A homomorphism from *cq*'s body into *instance* hitting *head_image*.

    Returns a full variable mapping, or None.  ``satisfies`` is the
    boolean fast path; this variant materializes one witness mapping.
    """
    if len(head_image) != cq.arity:
        return None
    seed: dict[Var, Term] = {}
    for var, value in zip(cq.head_vars, head_image):
        if var in seed and seed[var] != value:
            return None
        seed[var] = value
    constrained = cq.substitute({})  # defensive copy not needed; bindings rebinds
    for binding in bindings(constrained, instance):
        if all(binding[var] == seed[var] for var in seed):
            return binding
    return None


def cq_homomorphism(source: CQ, target: CQ) -> dict[Var, Term] | None:
    """A homomorphism from *source* onto *target*'s canonical database.

    The mapping sends source variables to frozen constants of the
    target; it witnesses ``target ⊆ source`` (note the contravariance:
    homomorphisms go opposite to containment).
    """
    instance, head = target.canonical_instance()
    return homomorphism_to_instance(source, instance, head)


def has_homomorphism(source: CQ, target: CQ) -> bool:
    """Boolean version of :func:`cq_homomorphism` (early exit)."""
    instance, head = target.canonical_instance()
    return satisfies(source, instance, head)


def endomorphism_image(cq: CQ, mapping: Mapping[Var, Term]) -> CQ:
    """Apply an endomorphism given as variable -> frozen-constant map.

    Frozen constants ``("_frozen", name)`` are translated back to the
    variables they froze, yielding the image query (used by core
    computation).
    """
    unfreeze: dict[Term, Var] = {
        ("_frozen", var.name): var for var in cq.variables()
    }
    substitution: dict[Var, Term] = {}
    for var, value in mapping.items():
        substitution[var] = unfreeze.get(value, value)
    atoms = tuple(atom.substitute(substitution) for atom in cq.body)
    new_head = tuple(substitution.get(var, var) for var in cq.head_vars)
    if not all(is_var(term) for term in new_head):
        raise ValueError("endomorphism must keep head variables as variables")
    # Deduplicate atoms while keeping order stable.
    seen: set[Atom] = set()
    unique: list[Atom] = []
    for atom in atoms:
        if atom not in seen:
            seen.add(atom)
            unique.append(atom)
    return CQ(new_head, tuple(unique))  # type: ignore[arg-type]
