"""Exact containment for CQ and UCQ (Sections 2.1 and 2.3).

- CQ containment is the Chandra-Merlin test [18]: ``Q1 ⊆ Q2`` iff
  ``Q2``'s body maps homomorphically into ``Q1``'s canonical database
  hitting the head — NP-complete, exact.
- UCQ containment is the Sagiv-Yannakakis characterization [50]:
  ``U1 ⊆ U2`` iff every disjunct of ``U1`` is contained in ``U2``, and a
  CQ is contained in a UCQ iff *some* disjunct maps in.  (The
  per-disjunct check must be done against the whole union: evaluating
  ``U2`` over the canonical database of the disjunct.)

Refutations come with a counterexample database on which the answers
differ, so every negative verdict is independently replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.instance import Instance
from .evaluation import satisfies_ucq, satisfies
from .syntax import CQ, UCQ, Term


@dataclass(frozen=True)
class CQContainmentResult:
    """Outcome of a (U)CQ containment test.

    Attributes:
        holds: the verdict (always exact for this class).
        counterexample: for negative verdicts, an instance plus head
            tuple in ``Q1(D) - Q2(D)``.
    """

    holds: bool
    counterexample: tuple[Instance, tuple[Term, ...]] | None = None


def cq_contained(q1: CQ, q2: CQ) -> bool:
    """Chandra-Merlin: Q1 ⊆ Q2 via homomorphism Q2 -> canonical(Q1)."""
    instance, head = q1.canonical_instance()
    return satisfies(q2, instance, head)


def cq_equivalent(q1: CQ, q2: CQ) -> bool:
    return cq_contained(q1, q2) and cq_contained(q2, q1)


def ucq_contained(u1: UCQ | CQ, u2: UCQ | CQ) -> CQContainmentResult:
    """Sagiv-Yannakakis UCQ containment with counterexample extraction."""
    left = u1 if isinstance(u1, UCQ) else UCQ((u1,))
    right = u2 if isinstance(u2, UCQ) else UCQ((u2,))
    if left.arity != right.arity:
        raise ValueError(
            f"containment between arities {left.arity} and {right.arity} is ill-typed"
        )
    for disjunct in left:
        instance, head = disjunct.canonical_instance()
        if not satisfies_ucq(right, instance, head):
            return CQContainmentResult(False, (instance, head))
    return CQContainmentResult(True)


def ucq_equivalent(u1: UCQ | CQ, u2: UCQ | CQ) -> bool:
    return ucq_contained(u1, u2).holds and ucq_contained(u2, u1).holds
