"""Evaluation of CQs and UCQs over relational instances.

The engine is a backtracking join with a greedy atom ordering: at each
step it picks the atom with the most already-bound variables, breaking
ties toward the smallest relation.  That is the textbook strategy the
paper's Select-Project-Join reading of CQs suggests, and it keeps the
exponential worst case confined to genuinely hard (cyclic, high-arity)
queries.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..relational.instance import Instance
from .syntax import CQ, UCQ, Atom, Term, Var, is_var


def _match_atom(
    atom: Atom, instance: Instance, binding: dict[Var, Term]
) -> Iterator[dict[Var, Term]]:
    """Extensions of *binding* that satisfy *atom* in *instance*."""
    rows = instance.tuples(atom.predicate)
    pattern = [
        binding.get(arg, arg) if is_var(arg) and arg in binding else arg
        for arg in atom.args
    ]
    for row in rows:
        extension: dict[Var, Term] = {}
        ok = True
        for arg, want, got in zip(atom.args, pattern, row):
            if is_var(want):  # unbound variable
                already = extension.get(want)
                if already is None:
                    extension[want] = got  # type: ignore[index]
                elif already != got:
                    ok = False
                    break
            elif want != got:
                ok = False
                break
        if ok:
            merged = dict(binding)
            merged.update(extension)
            yield merged


def _order_atoms(cq: CQ, instance: Instance) -> list[Atom]:
    """Greedy join order: most-bound-variables first, then smallest relation."""
    remaining = list(cq.body)
    ordered: list[Atom] = []
    bound: set[Var] = set()
    while remaining:

        def score(atom: Atom) -> tuple[int, int]:
            bound_count = sum(1 for var in atom.variables() if var in bound)
            constants = sum(1 for arg in atom.args if not is_var(arg))
            size = len(instance.tuples(atom.predicate))
            return (-(bound_count + constants), size)

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def bindings(cq: CQ, instance: Instance) -> Iterator[dict[Var, Term]]:
    """All satisfying assignments of the CQ's variables (may repeat heads)."""
    ordered = _order_atoms(cq, instance)

    def recurse(index: int, binding: dict[Var, Term]) -> Iterator[dict[Var, Term]]:
        if index == len(ordered):
            yield binding
            return
        for extended in _match_atom(ordered[index], instance, binding):
            yield from recurse(index + 1, extended)

    yield from recurse(0, {})


def evaluate_cq(cq: CQ, instance: Instance) -> frozenset[tuple[Term, ...]]:
    """The answer relation ``Q(D)``: head-variable images of all bindings.

    Enumeration prunes subtrees whose head projection is already an
    answer: once every head variable is bound, any completion yields the
    same output tuple, so queries with redundant atoms (the minimization
    example's bread and butter) do not pay a combinatorial price for
    them beyond the first witness.
    """
    ordered = _order_atoms(cq, instance)
    head_vars = set(cq.head_vars)
    answers: set[tuple[Term, ...]] = set()

    def recurse(index: int, binding: dict[Var, Term]) -> None:
        if head_vars <= binding.keys():
            head = tuple(binding[var] for var in cq.head_vars)
            if head in answers:
                return
            if index == len(ordered):
                answers.add(head)
                return
            # Look ahead: if the rest is satisfiable, record and prune.
            if _satisfiable(index, binding):
                answers.add(head)
            return
        if index == len(ordered):
            answers.add(tuple(binding[var] for var in cq.head_vars))
            return
        for extended in _match_atom(ordered[index], instance, binding):
            recurse(index + 1, extended)

    def _satisfiable(index: int, binding: dict[Var, Term]) -> bool:
        if index == len(ordered):
            return True
        return any(
            _satisfiable(index + 1, extended)
            for extended in _match_atom(ordered[index], instance, binding)
        )

    recurse(0, {})
    return frozenset(answers)


def evaluate_ucq(ucq: UCQ, instance: Instance) -> frozenset[tuple[Term, ...]]:
    """Union of the disjuncts' answers."""
    answers: set[tuple[Term, ...]] = set()
    for cq in ucq:
        answers |= evaluate_cq(cq, instance)
    return frozenset(answers)


def satisfies(cq: CQ, instance: Instance, head: tuple[Term, ...]) -> bool:
    """Does ``head in Q(D)``?  (Early-exit variant of evaluation.)

    This is the hot path of Chandra-Merlin containment: bind the head
    variables to the candidate tuple up front, then search for any one
    satisfying assignment of the existential variables.
    """
    if len(head) != cq.arity:
        return False
    binding: dict[Var, Term] = {}
    for var, value in zip(cq.head_vars, head):
        if var in binding and binding[var] != value:
            return False
        binding[var] = value
    ordered = _order_atoms(cq, instance)

    def recurse(index: int, current: dict[Var, Term]) -> bool:
        if index == len(ordered):
            return True
        return any(
            recurse(index + 1, extended)
            for extended in _match_atom(ordered[index], instance, current)
        )

    return recurse(0, binding)


def satisfies_ucq(ucq: UCQ, instance: Instance, head: tuple[Term, ...]) -> bool:
    return any(satisfies(cq, instance, head) for cq in ucq)
