"""regular-queries: query classes and containment from Vardi, PODS 2016.

This package implements, from scratch, every query class surveyed in
Moshe Y. Vardi's *A Theory of Regular Queries* (PODS 2016) together with
its evaluation engine and its query-containment decision procedure:

- relational classes: CQ, UCQ, Datalog (:mod:`repro.cq`, :mod:`repro.datalog`)
- graph classes: RPQ, 2RPQ, C2RPQ/UC2RPQ, RQ (:mod:`repro.rpq`,
  :mod:`repro.crpq`, :mod:`repro.rq`)
- the Datalog fragment GRQ (:mod:`repro.grq`)

The automata-theoretic machinery the paper builds on (NFAs, 2NFAs, the
fold construction of Lemma 3, the single-exponential 2NFA complementation
of Lemma 4, on-the-fly product emptiness) lives in :mod:`repro.automata`;
the data substrates (edge-labeled graph databases, relational instances)
live in :mod:`repro.graphdb` and :mod:`repro.relational`.

The unified entry point is :func:`repro.core.engine.check_containment`.
"""

__version__ = "1.0.0"

from .budget import Budget, BudgetExhausted, BudgetMeter
from .core.classify import classify, describe_tower
from .core.engine import check_containment, check_equivalence
from .core.witness import verify_counterexample
from .report import (
    ContainmentResult,
    Counterexample,
    EquivalenceResult,
    Verdict,
)

__all__ = [
    "classify",
    "describe_tower",
    "check_containment",
    "check_equivalence",
    "verify_counterexample",
    "Budget",
    "BudgetExhausted",
    "BudgetMeter",
    "ContainmentResult",
    "Counterexample",
    "EquivalenceResult",
    "Verdict",
    "automata",
    "graphdb",
    "relational",
    "cq",
    "datalog",
    "rpq",
    "crpq",
    "rq",
    "grq",
    "core",
]
