"""Relational database instances (Section 2 of the paper).

A database is a finite set of facts ``p(a1, ..., ak)`` over a set of
predicate names with fixed arities.  As the paper observes (Section
3.1), a graph database *is* a relational structure whose schema consists
of binary relations — conversions both ways live here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

Constant = Hashable
Fact = tuple[str, tuple[Constant, ...]]


class Instance:
    """A relational instance: predicate name -> set of tuples.

    Arities are enforced per predicate as facts are added.

    >>> db = Instance.from_facts([("edge", (1, 2)), ("edge", (2, 3))])
    >>> sorted(db.tuples("edge"))
    [(1, 2), (2, 3)]
    """

    def __init__(self) -> None:
        self._relations: dict[str, set[tuple[Constant, ...]]] = defaultdict(set)
        self._arities: dict[str, int] = {}

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "Instance":
        instance = cls()
        for predicate, row in facts:
            instance.add(predicate, row)
        return instance

    def add(self, predicate: str, row: tuple[Constant, ...]) -> None:
        """Insert fact ``predicate(*row)``, enforcing a consistent arity."""
        row = tuple(row)
        arity = self._arities.setdefault(predicate, len(row))
        if arity != len(row):
            raise ValueError(
                f"{predicate} has arity {arity}, got tuple of length {len(row)}"
            )
        self._relations[predicate].add(row)

    def declare(self, predicate: str, arity: int) -> None:
        """Register a (possibly empty) relation with the given arity."""
        existing = self._arities.setdefault(predicate, arity)
        if existing != arity:
            raise ValueError(f"{predicate} has arity {existing}, not {arity}")
        self._relations.setdefault(predicate, set())

    def tuples(self, predicate: str) -> frozenset[tuple[Constant, ...]]:
        return frozenset(self._relations.get(predicate, ()))

    def arity(self, predicate: str) -> int | None:
        return self._arities.get(predicate)

    @property
    def predicates(self) -> frozenset[str]:
        return frozenset(self._relations)

    def facts(self) -> Iterator[Fact]:
        for predicate, rows in self._relations.items():
            for row in rows:
                yield predicate, row

    @property
    def num_facts(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    @property
    def active_domain(self) -> frozenset:
        domain: set = set()
        for rows in self._relations.values():
            for row in rows:
                domain.update(row)
        return frozenset(domain)

    def copy(self) -> "Instance":
        return Instance.from_facts(self.facts())

    def union(self, other: "Instance") -> "Instance":
        merged = self.copy()
        for predicate, row in other.facts():
            merged.add(predicate, row)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return {p: self.tuples(p) for p in self.predicates if self.tuples(p)} == {
            p: other.tuples(p) for p in other.predicates if other.tuples(p)
        }

    def __hash__(self) -> int:  # pragma: no cover - rarely needed
        return hash(frozenset(self.facts()))

    def __contains__(self, fact: Fact) -> bool:
        predicate, row = fact
        return tuple(row) in self._relations.get(predicate, ())

    def __repr__(self) -> str:
        counts = {predicate: len(rows) for predicate, rows in self._relations.items()}
        return f"Instance({counts})"


def graph_to_instance(graph) -> Instance:
    """View a graph database as a relational structure over binary symbols."""
    instance = Instance()
    for source, label, target in graph.edges():
        instance.add(label, (source, target))
    return instance


def instance_to_graph(instance: Instance):
    """View a binary-relations-only instance as a graph database."""
    from ..graphdb.database import GraphDatabase

    graph = GraphDatabase()
    for predicate, row in instance.facts():
        if len(row) != 2:
            raise ValueError(
                f"cannot view {predicate}/{len(row)} as a graph edge relation"
            )
        graph.add_edge(row[0], predicate, row[1])
    for constant in instance.active_domain:
        graph.add_node(constant)
    return graph
