"""Loading and saving relational instances.

Formats:

- **fact text** — Datalog-style ground facts, one per period:
  ``edge(1, 2). edge(2, 3). approved(1, 2).``
- **JSON** — ``{"relation": [[...], ...], ...}``.
"""

from __future__ import annotations

import json
import pathlib
import re

from .instance import Instance

_FACT = re.compile(
    r"\s*(?P<pred>[A-Za-z_][A-Za-z0-9_+\-]*)\s*\(\s*(?P<args>[^()]*)\)\s*"
)


def _parse_constant(token: str):
    token = token.strip()
    if token.startswith(("'", '"')) and token.endswith(("'", '"')) and len(token) >= 2:
        return token[1:-1]
    if token.lstrip("-").isdigit():
        return int(token)
    return token


def to_fact_text(instance: Instance) -> str:
    """Serialize as ground Datalog facts (sorted, deterministic)."""
    lines = []
    for predicate, row in sorted(instance.facts(), key=repr):
        inner = ", ".join(repr(v) if isinstance(v, str) else str(v) for v in row)
        lines.append(f"{predicate}({inner}).")
    return "\n".join(lines) + ("\n" if lines else "")


def from_fact_text(text: str) -> Instance:
    """Parse ground facts; strings may be quoted, bare tokens stay strings."""
    instance = Instance()
    cleaned = "\n".join(line.split("%", 1)[0] for line in text.splitlines())
    for chunk in cleaned.split("."):
        chunk = chunk.strip()
        if not chunk:
            continue
        match = _FACT.fullmatch(chunk)
        if match is None:
            raise ValueError(f"expected a ground fact, got {chunk!r}")
        args = match.group("args").strip()
        row = tuple(_parse_constant(t) for t in args.split(",")) if args else ()
        instance.add(match.group("pred"), row)
    return instance


def to_json(instance: Instance) -> str:
    """Serialize to JSON (sorted, deterministic)."""
    return json.dumps(
        {
            predicate: sorted((list(row) for row in instance.tuples(predicate)), key=repr)
            for predicate in sorted(instance.predicates)
        }
    )


def from_json(text: str) -> Instance:
    data = json.loads(text)
    instance = Instance()
    for predicate, rows in data.items():
        for row in rows:
            instance.add(predicate, tuple(row))
    return instance


def save(instance: Instance, path: str | pathlib.Path) -> None:
    """Save by extension: ``.json`` -> JSON, anything else -> fact text."""
    path = pathlib.Path(path)
    text = to_json(instance) if path.suffix == ".json" else to_fact_text(instance)
    path.write_text(text)


def load(path: str | pathlib.Path) -> Instance:
    """Load by extension: ``.json`` -> JSON, anything else -> fact text."""
    path = pathlib.Path(path)
    text = path.read_text()
    return from_json(text) if path.suffix == ".json" else from_fact_text(text)
