"""Relational substrate (Section 2): instances, facts, generators, IO."""

from . import io

from .generators import (
    bipartite_instance,
    chain_instance,
    random_instance,
    tree_instance,
)
from .instance import Instance, graph_to_instance, instance_to_graph

__all__ = [
    "io",
    "Instance",
    "graph_to_instance",
    "instance_to_graph",
    "bipartite_instance",
    "chain_instance",
    "random_instance",
    "tree_instance",
]
