"""Synthetic relational instances for the Datalog/CQ experiments."""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from .instance import Instance


def _rng(seed_or_rng: int | random.Random | None) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_instance(
    schema: Mapping[str, int],
    domain_size: int,
    facts_per_relation: int,
    seed: int | random.Random | None = 0,
) -> Instance:
    """Uniform random facts for each relation of the given arity schema.

    Args:
        schema: predicate name -> arity.
        domain_size: constants are ``0 .. domain_size - 1``.
        facts_per_relation: how many facts to draw per predicate
            (duplicates collapse, so relations may end up smaller).
        seed: RNG seed or instance for reproducibility.
    """
    rng = _rng(seed)
    instance = Instance()
    for predicate, arity in schema.items():
        for _ in range(facts_per_relation):
            instance.add(
                predicate,
                tuple(rng.randrange(domain_size) for _ in range(arity)),
            )
    return instance


def chain_instance(length: int, predicate: str = "edge") -> Instance:
    """The path instance ``predicate(0,1), ..., predicate(n-1,n)``."""
    instance = Instance()
    for index in range(length):
        instance.add(predicate, (index, index + 1))
    return instance


def tree_instance(depth: int, fanout: int, predicate: str = "edge") -> Instance:
    """A complete tree of the given depth and fanout, edges parent->child."""
    instance = Instance()
    frontier = [(0,)]
    for _ in range(depth):
        nxt = []
        for node in frontier:
            for child in range(fanout):
                child_node = node + (child,)
                instance.add(predicate, (node, child_node))
                nxt.append(child_node)
        frontier = nxt
    return instance


def bipartite_instance(
    left: int, right: int, density: float, predicate: str = "rel",
    seed: int | random.Random | None = 0,
) -> Instance:
    """A random bipartite relation between ``l0..`` and ``r0..`` constants."""
    rng = _rng(seed)
    instance = Instance()
    for a in range(left):
        for b in range(right):
            if rng.random() < density:
                instance.add(predicate, (f"l{a}", f"r{b}"))
    return instance
