"""Shared result types for every containment procedure in the package.

The calibration contract from DESIGN.md, encoded in types:

- :attr:`Verdict.REFUTED` is always exact — it carries a concrete
  counterexample database on which the two queries' answers differ, so
  any negative verdict can be replayed independently of the decision
  procedure that produced it.
- :attr:`Verdict.HOLDS` is an exact positive verdict (automata- or
  homomorphism-based procedures, or exhausted finite expansion spaces).
- :attr:`Verdict.HOLDS_UP_TO_BOUND` is the bounded-exact outcome of the
  expansion procedures for UC2RPQ/RQ/GRQ/Datalog — no counterexample
  exists among expansions within the reported bound — and of any
  procedure whose search exhausted a *counter* budget (configs, states,
  expansions): the explored part of the space contains no
  counterexample.  The exact algorithms for these classes are
  (2)EXPSPACE-complete (Theorems 6-8), so unbounded exactness is
  intrinsically out of reach at scale.
- :attr:`Verdict.INCONCLUSIVE` is the no-evidence outcome: the search
  was cut short by a *wall-clock deadline* (see :mod:`repro.budget`),
  which bounds nothing structural about the search space.  It is falsy
  — the conservative answer to "does containment hold?" when nothing
  was established.
- :attr:`Verdict.ERROR` is the failure-isolation outcome of the batch
  layer (:mod:`repro.core.batch`): the check for this item raised
  instead of deciding anything, and ``details["error"]`` carries the
  exception type, message, and traceback.  Like ``INCONCLUSIVE`` it is
  falsy and inexact; unlike it, it signals a defect (in the query or
  the procedure), not an exhausted budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class Verdict(enum.Enum):
    """Outcome of a containment check; see module docstring for contract."""

    HOLDS = "holds"
    REFUTED = "refuted"
    HOLDS_UP_TO_BOUND = "holds_up_to_bound"
    INCONCLUSIVE = "inconclusive"
    ERROR = "error"

    def __bool__(self) -> bool:
        """Truthiness: is there at least bounded evidence of containment?

        ``HOLDS_UP_TO_BOUND`` is truthy (no counterexample within the
        explored bound); ``INCONCLUSIVE`` is falsy (nothing was
        established before the deadline), as is ``ERROR`` (the check
        crashed).  Callers needing unconditional guarantees must inspect
        the verdict (or :attr:`ContainmentResult.is_exact`) explicitly.
        """
        return self not in (Verdict.REFUTED, Verdict.INCONCLUSIVE, Verdict.ERROR)

    @property
    def is_exact(self) -> bool:
        """Whether this verdict is unconditional (HOLDS or REFUTED)."""
        return self in (Verdict.HOLDS, Verdict.REFUTED)


@dataclass(frozen=True)
class Counterexample:
    """A database and output tuple witnessing non-containment.

    Attributes:
        database: a :class:`repro.graphdb.GraphDatabase` or
            :class:`repro.relational.Instance` (whichever the query
            class evaluates over).
        output: the tuple in ``Q1(D) - Q2(D)``.
    """

    database: Any
    output: tuple


@dataclass(frozen=True)
class ContainmentResult:
    """The uniform result of ``Q1 ⊆ Q2`` checks across all query classes.

    Attributes:
        verdict: see :class:`Verdict`.
        method: short name of the decision procedure used, e.g.
            ``"rpq-language"``, ``"2rpq-fold-shepherdson"``,
            ``"ucq-homomorphism"``, ``"expansion"``.
        counterexample: present iff ``verdict is REFUTED``.
        bound: the exploration bound, present iff
            ``verdict is HOLDS_UP_TO_BOUND`` (interpretation is
            procedure-specific and recorded in ``details``).
        details: free-form instrumentation (expansion counts, automaton
            sizes, search statistics) surfaced to the benchmarks.
    """

    verdict: Verdict
    method: str
    counterexample: Counterexample | None = None
    bound: int | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.verdict is Verdict.REFUTED) != (self.counterexample is not None):
            raise ValueError("REFUTED verdicts (exactly) must carry a counterexample")
        if self.verdict is Verdict.HOLDS_UP_TO_BOUND and self.bound is None:
            raise ValueError("HOLDS_UP_TO_BOUND verdicts must report their bound")

    @property
    def holds(self) -> bool:
        """Truthy summary (see :meth:`Verdict.__bool__`)."""
        return bool(self.verdict)

    @property
    def is_exact(self) -> bool:
        """Whether the verdict is unconditional (HOLDS or REFUTED)."""
        return self.verdict.is_exact

    def to_dict(self) -> dict:
        """Machine-readable summary (used by EXPERIMENTS.md tooling)."""
        return {
            "verdict": self.verdict.value,
            "method": self.method,
            "bound": self.bound,
            "has_counterexample": self.counterexample is not None,
            "details": dict(self.details),
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.verdict is Verdict.REFUTED:
            assert self.counterexample is not None
            return (
                f"REFUTED by {self.method}: output {self.counterexample.output!r} "
                f"distinguishes the queries on {self.counterexample.database!r}"
            )
        if self.verdict is Verdict.HOLDS_UP_TO_BOUND:
            return f"holds up to bound {self.bound} ({self.method})"
        if self.verdict is Verdict.INCONCLUSIVE:
            exhausted = dict(self.details).get("budget", {})
            return (
                f"INCONCLUSIVE ({self.method}): "
                f"{exhausted.get('exhausted', 'budget')} exhausted"
            )
        if self.verdict is Verdict.ERROR:
            error = dict(self.details).get("error", {})
            return (
                f"ERROR ({self.method}): "
                f"{error.get('type', 'Exception')}: {error.get('message', '')}"
            )
        return f"HOLDS ({self.method})"


@dataclass(frozen=True)
class EquivalenceResult:
    """Both directions of ``Q1 ≡ Q2``, with calibrated strictness.

    Truthy when both directions hold — under the default lenient reading
    bounded directions count (matching :meth:`Verdict.__bool__`); with
    ``exact=True`` only unconditional ``HOLDS`` verdicts count, so a
    direction established merely up to a bound makes the result falsy.
    :attr:`bounded_directions` surfaces which direction(s) were only
    bounded, so callers never conflate HOLDS with HOLDS_UP_TO_BOUND
    silently.
    """

    forward: ContainmentResult
    backward: ContainmentResult
    exact: bool = False

    def __bool__(self) -> bool:
        if self.exact:
            return (
                self.forward.verdict is Verdict.HOLDS
                and self.backward.verdict is Verdict.HOLDS
            )
        return self.forward.holds and self.backward.holds

    @property
    def equivalent(self) -> bool:
        """Explicit form of the truthiness above."""
        return bool(self)

    @property
    def is_exact(self) -> bool:
        """Whether both directions reached unconditional verdicts."""
        return self.forward.is_exact and self.backward.is_exact

    @property
    def bounded_directions(self) -> tuple[str, ...]:
        """Directions whose positive verdict was only bounded/inconclusive."""
        return tuple(
            name
            for name, result in (("forward", self.forward), ("backward", self.backward))
            if result.verdict in (Verdict.HOLDS_UP_TO_BOUND, Verdict.INCONCLUSIVE)
        )

    def describe(self) -> str:
        if bool(self):
            qualifier = "" if self.is_exact else (
                f" (bounded: {', '.join(self.bounded_directions)})"
            )
            return f"equivalent{qualifier}"
        return (
            f"not established: forward {self.forward.describe()}; "
            f"backward {self.backward.describe()}"
        )
