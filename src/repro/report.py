"""Shared result types for every containment procedure in the package.

The calibration contract from DESIGN.md, encoded in types:

- :attr:`Verdict.REFUTED` is always exact — it carries a concrete
  counterexample database on which the two queries' answers differ, so
  any negative verdict can be replayed independently of the decision
  procedure that produced it.
- :attr:`Verdict.HOLDS` is an exact positive verdict (automata- or
  homomorphism-based procedures, or exhausted finite expansion spaces).
- :attr:`Verdict.HOLDS_UP_TO_BOUND` is the bounded-exact outcome of the
  expansion procedures for UC2RPQ/RQ/GRQ/Datalog: no counterexample
  exists among expansions within the reported bound.  The exact
  algorithms for these classes are (2)EXPSPACE-complete (Theorems 6-8),
  so unbounded exactness is intrinsically out of reach at scale.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class Verdict(enum.Enum):
    """Outcome of a containment check; see module docstring for contract."""

    HOLDS = "holds"
    REFUTED = "refuted"
    HOLDS_UP_TO_BOUND = "holds_up_to_bound"

    def __bool__(self) -> bool:
        """Truthiness: did the check fail to find a counterexample?

        ``HOLDS_UP_TO_BOUND`` is truthy; callers needing unconditional
        guarantees must inspect the verdict explicitly.
        """
        return self is not Verdict.REFUTED


@dataclass(frozen=True)
class Counterexample:
    """A database and output tuple witnessing non-containment.

    Attributes:
        database: a :class:`repro.graphdb.GraphDatabase` or
            :class:`repro.relational.Instance` (whichever the query
            class evaluates over).
        output: the tuple in ``Q1(D) - Q2(D)``.
    """

    database: Any
    output: tuple


@dataclass(frozen=True)
class ContainmentResult:
    """The uniform result of ``Q1 ⊆ Q2`` checks across all query classes.

    Attributes:
        verdict: see :class:`Verdict`.
        method: short name of the decision procedure used, e.g.
            ``"rpq-language"``, ``"2rpq-fold-shepherdson"``,
            ``"ucq-homomorphism"``, ``"expansion"``.
        counterexample: present iff ``verdict is REFUTED``.
        bound: the exploration bound, present iff
            ``verdict is HOLDS_UP_TO_BOUND`` (interpretation is
            procedure-specific and recorded in ``details``).
        details: free-form instrumentation (expansion counts, automaton
            sizes, search statistics) surfaced to the benchmarks.
    """

    verdict: Verdict
    method: str
    counterexample: Counterexample | None = None
    bound: int | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.verdict is Verdict.REFUTED) != (self.counterexample is not None):
            raise ValueError("REFUTED verdicts (exactly) must carry a counterexample")
        if self.verdict is Verdict.HOLDS_UP_TO_BOUND and self.bound is None:
            raise ValueError("HOLDS_UP_TO_BOUND verdicts must report their bound")

    @property
    def holds(self) -> bool:
        """Truthy summary (see :meth:`Verdict.__bool__`)."""
        return bool(self.verdict)

    def to_dict(self) -> dict:
        """Machine-readable summary (used by EXPERIMENTS.md tooling)."""
        return {
            "verdict": self.verdict.value,
            "method": self.method,
            "bound": self.bound,
            "has_counterexample": self.counterexample is not None,
            "details": dict(self.details),
        }

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.verdict is Verdict.REFUTED:
            assert self.counterexample is not None
            return (
                f"REFUTED by {self.method}: output {self.counterexample.output!r} "
                f"distinguishes the queries on {self.counterexample.database!r}"
            )
        if self.verdict is Verdict.HOLDS_UP_TO_BOUND:
            return f"holds up to bound {self.bound} ({self.method})"
        return f"HOLDS ({self.method})"
