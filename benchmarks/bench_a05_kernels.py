"""A5 — indexed bitset kernels vs the object-state baselines.

The measurements behind DESIGN.md's "Performance architecture" section:

1. **E1 workload** (Lemma 1 RPQ containment): random regex pairs at
   growing depth, timed through :func:`containment_counterexample` with
   the kernel switch off/on.  Verdicts must agree exactly and witnesses
   must have equal (shortest) length and actually separate the
   languages.
2. **E5 workload** (Theorem 5 2RPQ containment, the paper-faithful
   ``lemma4-onthefly`` method): a structured instance family of growing
   fold/complement size ending at the paper's own ``p ⊑ p p- p``.
   The Shepherdson method is reported too, for honesty: its step table
   is memoized inside the lazy complement, so the bitset kernel's
   once-per-configuration successor sharing buys little there (~1x).
3. **Containment cache**: repeated engine checks on the same pairs are
   served from the cache, with hit/miss counters to prove it.

Query *compilation* is hoisted out of every timed region (both arms
share ``reduce_nfa``; the kernels accelerate checks, not parsing) —
this mirrors production use, where the regex-NFA cache amortizes
compilation across calls.
"""

import random
import time

from repro.automata.dfa import containment_counterexample
from repro.automata.indexed import use_indexed_kernels
from repro.automata.regex import random_regex
from repro.cache import cache_stats, clear_caches, use_caching
from repro.core.engine import check_containment
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import RPQ, TwoRPQ

ALPHABET = ("a", "b")

# Growing fold size; the last instance is the paper's divergence example
# and dominates the sweep (hundreds of ms on the baseline).
E5_INSTANCES = [("p", "p p-"), ("a a", "a a-"), ("p", "p p- p")]


def test_a5_e01_kernels(benchmark, report, once_benchmark):
    """E1 workload: Lemma 1 containment, indexed kernels off vs on."""
    rng = random.Random(7)
    suites = {
        depth: [
            (
                RPQ(random_regex(rng, ALPHABET, depth)).nfa,
                RPQ(random_regex(rng, ALPHABET, depth)).nfa,
            )
            for _ in range(20)
        ]
        for depth in (4, 6, 8, 10)
    }

    def run():
        rows = []
        for depth, pairs in suites.items():
            timings: dict[bool, float] = {}
            outcomes: dict[bool, list] = {}
            for kernels in (False, True):
                best = None
                for _ in range(3):
                    with use_caching(False), use_indexed_kernels(kernels):
                        start = time.perf_counter()
                        outcomes[kernels] = [
                            containment_counterexample(n1, n2, ALPHABET)
                            for n1, n2 in pairs
                        ]
                        elapsed = time.perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                timings[kernels] = best
            for (n1, n2), old, new in zip(pairs, outcomes[False], outcomes[True]):
                assert (old is None) == (new is None)  # identical verdicts
                if old is not None:
                    assert len(old) == len(new)  # both searches are shortest-word
                    assert n1.accepts(new) and not n2.accepts(new)
            speedup = timings[False] / timings[True]
            rows.append(
                [
                    depth,
                    f"{timings[False] / len(pairs) * 1000:.2f}",
                    f"{timings[True] / len(pairs) * 1000:.2f}",
                    f"{speedup:.2f}x",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A5",
        "E1 workload: Lemma 1 checks, baseline vs indexed kernels (20 pairs/depth)",
        ["regex depth", "baseline ms/check", "indexed ms/check", "speedup"],
        rows,
        note="verdicts identical, witnesses equal-length and verified on both arms",
    )
    speedups = [float(row[3].rstrip("x")) for row in rows]
    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] >= 2.0  # target on the largest sweep point


def test_a5_e05_kernels(benchmark, report, once_benchmark):
    """E5 workload: Theorem 5 checks, indexed kernels off vs on."""
    queries = [(TwoRPQ.parse(l), TwoRPQ.parse(r)) for l, r in E5_INSTANCES]
    for q1, q2 in queries:
        _ = (q1.nfa, q2.nfa)  # warm the regex-NFA cache outside the timing

    def run():
        rows = []
        for (left, right), (q1, q2) in zip(E5_INSTANCES, queries):
            for method in ("lemma4-onthefly", "shepherdson"):
                timings: dict[bool, float] = {}
                results: dict[bool, object] = {}
                for kernels in (False, True):
                    best = None
                    for _ in range(3):
                        with use_indexed_kernels(kernels):
                            start = time.perf_counter()
                            results[kernels] = two_rpq_contained(
                                q1, q2, method=method
                            )
                            elapsed = time.perf_counter() - start
                        best = elapsed if best is None else min(best, elapsed)
                    timings[kernels] = best
                old, new = results[False], results[True]
                assert old.verdict == new.verdict  # identical verdicts
                if old.counterexample is not None:
                    # Canonical witness databases are paths of witness-word
                    # length; both searches are shortest-word BFS.
                    assert old.counterexample.output == new.counterexample.output
                rows.append(
                    [
                        f"{left} ⊑ {right}",
                        method,
                        new.verdict.value,
                        f"{timings[False] * 1000:.2f}",
                        f"{timings[True] * 1000:.2f}",
                        f"{timings[False] / timings[True]:.2f}x",
                    ]
                )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A5",
        "E5 workload: 2RPQ checks, baseline vs indexed kernels (best of 3)",
        ["instance", "method", "verdict", "baseline ms", "indexed ms", "speedup"],
        rows,
        note="lemma4-onthefly gains from once-per-config successor sharing; "
        "shepherdson's step table is already memoized, so it stays ~1x",
    )
    largest_onthefly = [row for row in rows if row[1] == "lemma4-onthefly"][-1]
    assert float(largest_onthefly[5].rstrip("x")) >= 2.0  # target on p ⊑ p p- p


def test_a5_containment_cache(benchmark, report, once_benchmark):
    """Repeated engine checks on the same pairs are served from cache."""
    pairs = [
        (RPQ.parse("a a"), RPQ.parse("a+")),
        (RPQ.parse("(a|b)* a"), RPQ.parse("(a|b)*")),
        (TwoRPQ.parse("p"), TwoRPQ.parse("p p- p")),
        (TwoRPQ.parse("a a"), TwoRPQ.parse("a a-")),
    ]
    rounds = 9

    def run():
        clear_caches(reset_stats=True)
        start = time.perf_counter()
        first = [check_containment(q1, q2) for q1, q2 in pairs]
        cold_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        repeats = [
            check_containment(q1, q2) for _ in range(rounds) for q1, q2 in pairs
        ]
        warm_ms = (time.perf_counter() - start) * 1000 / rounds
        assert all(result.details["cache"] == "miss" for result in first)
        assert all(result.details["cache"] == "hit" for result in repeats)
        for repeat, cold in zip(repeats, first * rounds):
            assert repeat.verdict == cold.verdict
            assert repeat.method == cold.method
        stats = cache_stats()["containment"]
        assert stats["hits"] == rounds * len(pairs)
        assert stats["misses"] == len(pairs)
        return [
            [
                len(pairs),
                f"{cold_ms:.2f}",
                f"{warm_ms:.3f}",
                stats["hits"],
                stats["misses"],
                f"{cold_ms / max(warm_ms, 1e-9):.0f}x",
            ]
        ]

    rows = once_benchmark(benchmark, run)
    report(
        "A5",
        "containment cache: cold pass vs cached pass over the same pairs",
        ["pairs", "cold ms", "cached ms/pass", "hits", "misses", "speedup"],
        rows,
        note="repeat check(Q1, Q2) calls never re-run the decision procedure",
    )
