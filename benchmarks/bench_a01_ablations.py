"""A1 — ablations of the implementation's own design choices.

Three switches DESIGN.md calls out, each measured on/off:

1. **NFA reduction before folding** (Theorem 5 pipeline): Thompson
   automata carry 2-4x redundant states, and the downstream
   constructions are exponential in state count.
2. **Head-projection pruning in CQ evaluation**: once the head variables
   are bound and the tuple is known, the remaining subtree is witness
   search, not enumeration.
3. **RQ algebraic simplification** before evaluation/containment.
4. **Indexed bitset kernels** (A5 measures the containment paths; the
   graph-evaluation kernel is ablated here).
"""

import random
import statistics
import time

from repro.automata.dfa import reduce_nfa
from repro.automata.fold import fold_two_nfa
from repro.automata.regex import random_regex
from repro.automata.shepherdson import LazyShepherdsonComplement
from repro.automata.onthefly import find_accepted_word
from repro.automata.alphabet import Alphabet
from repro.automata.indexed import use_indexed_kernels
from repro.cq.evaluation import bindings, evaluate_cq
from repro.cq.syntax import cq_from_strings
from repro.relational.generators import random_instance
from repro.rq.evaluation import evaluate_rq
from repro.rq.generators import random_rq
from repro.rq.optimize import simplify
from repro.graphdb.generators import random_graph
from repro.rpq.rpq import TwoRPQ, evaluate_nfa_on_graph


def test_a1_nfa_reduction(benchmark, report, once_benchmark):
    """Theorem 5 pipeline with raw Thompson NFAs vs reduced NFAs."""
    rng = random.Random(9)
    sigma_pm = Alphabet(("a", "b")).two_way
    pairs = [
        (
            random_regex(rng, ("a", "b"), 2, allow_inverse=True),
            random_regex(rng, ("a", "b"), 2, allow_inverse=True),
        )
        for _ in range(8)
    ]

    def run():
        rows = []
        for reduce in (False, True):
            times = []
            fold_states = []
            for r1, r2 in pairs:
                n1 = reduce_nfa(r1.to_nfa()) if reduce else r1.to_nfa().trim()
                n2 = reduce_nfa(r2.to_nfa()) if reduce else r2.to_nfa().trim()
                if n1.num_states == 0 or n2.num_states == 0:
                    continue
                folded = fold_two_nfa(n2, sigma_pm)
                fold_states.append(folded.num_states)
                start = time.perf_counter()
                find_accepted_word(
                    [n1, LazyShepherdsonComplement(folded)], sigma_pm
                )
                times.append(time.perf_counter() - start)
            rows.append(
                [
                    "reduced" if reduce else "raw Thompson",
                    f"{statistics.mean(fold_states):.1f}",
                    f"{statistics.median(times) * 1000:.2f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A1",
        "Theorem 5 pipeline: NFA reduction ablation",
        ["input automata", "mean fold-2NFA states", "median ms/check"],
        rows,
        note="the constructions downstream are exponential in state count",
    )
    assert float(rows[1][1]) <= float(rows[0][1])


def test_a1_cq_head_pruning(benchmark, report, once_benchmark):
    """evaluate_cq's prune vs raw binding enumeration on redundant CQs."""
    query = cq_from_strings(
        "x,z",
        ["E(x,y)", "E(y,z)", "E(x,u1)", "E(u2,z)", "E(x,u3)", "E(u4,z)"],
    )
    db = random_instance({"E": 2}, 15, 60, seed=4)

    def run():
        start = time.perf_counter()
        pruned = evaluate_cq(query, db)
        pruned_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        naive = frozenset(
            tuple(b[v] for v in query.head_vars) for b in bindings(query, db)
        )
        naive_ms = (time.perf_counter() - start) * 1000
        assert pruned == naive
        return [[len(pruned), f"{pruned_ms:.1f}", f"{naive_ms:.1f}",
                 f"{naive_ms / max(pruned_ms, 1e-9):.1f}x"]]

    rows = once_benchmark(benchmark, run)
    report(
        "A1",
        "CQ evaluation: head-projection pruning ablation",
        ["answers", "pruned ms", "full-enumeration ms", "speedup"],
        rows,
        note="redundant atoms cost a witness check instead of a product",
    )
    assert float(rows[0][3].rstrip("x")) >= 1.0


def test_a1_rq_simplifier(benchmark, report, once_benchmark):
    """Evaluating random RQ terms raw vs simplified."""
    rng = random.Random(21)
    terms = [random_rq(rng, ("a", "b"), 5) for _ in range(30)]
    db = random_graph(6, 14, ("a", "b"), seed=2)

    def run():
        raw_sizes = [t.size() for t in terms]
        simplified = [simplify(t) for t in terms]
        simp_sizes = [t.size() for t in simplified]
        start = time.perf_counter()
        for term in terms:
            evaluate_rq(term, db)
        raw_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        for term in simplified:
            evaluate_rq(term, db)
        simp_ms = (time.perf_counter() - start) * 1000
        return [[
            f"{statistics.mean(raw_sizes):.1f}",
            f"{statistics.mean(simp_sizes):.1f}",
            f"{raw_ms:.1f}",
            f"{simp_ms:.1f}",
        ]]

    rows = once_benchmark(benchmark, run)
    report(
        "A1",
        "RQ simplifier ablation (30 random terms, one graph)",
        ["mean size raw", "mean size simplified", "eval raw ms", "eval simplified ms"],
        rows,
        note="identity rewrites only; gains come from dropped duplicate work",
    )
    assert float(rows[0][1]) <= float(rows[0][0])


def test_a1_graph_eval_kernel(benchmark, report, once_benchmark):
    """2RPQ graph evaluation: object-state product BFS vs bitset kernel."""
    queries = [
        TwoRPQ.parse(text) for text in ("a+ b", "(a b-)* a", "(a|b)+ (a-|b)")
    ]
    db = random_graph(60, 420, ("a", "b"), seed=11)
    for query in queries:
        _ = query.nfa  # compile outside the timed region

    def run():
        rows = []
        answers = {}
        for kernels in (False, True):
            with use_indexed_kernels(kernels):
                start = time.perf_counter()
                answers[kernels] = [
                    evaluate_nfa_on_graph(query.nfa, db) for query in queries
                ]
                elapsed = (time.perf_counter() - start) * 1000
            rows.append(
                [
                    "bitset kernel" if kernels else "object-state BFS",
                    sum(len(a) for a in answers[kernels]),
                    f"{elapsed:.1f}",
                ]
            )
        assert answers[False] == answers[True]  # identical answer sets
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A1",
        "2RPQ graph evaluation: indexed-kernel ablation (3 queries, 60-node graph)",
        ["evaluation path", "total answers", "ms"],
        rows,
        note="same product BFS, states as big-int bitsets per node",
    )
