"""Shared infrastructure for the experiment benchmarks (E1-E12).

Each experiment prints the rows/series DESIGN.md's experiment index
names.  Every ``report(...)`` call emits twice from the one row source:

- ``benchmarks/results/<experiment>.txt`` — the human table quoted in
  EXPERIMENTS.md (also echoed in the end-of-run summary), and
- ``benchmarks/results/<experiment>.json`` — the same rows as a JSON
  list of ``{experiment, title, headers, rows, note}`` objects, the
  machine-readable feed for the performance observatory
  (``repro bench`` / ``BENCH_<runid>.json``; see DESIGN.md §7).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Iterable, Sequence

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"\n== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


_SESSION_TABLES: list[str] = []


@pytest.fixture(scope="session")
def report():
    """Emit an experiment table to the results dir (.txt + .json) and
    the end-of-run summary (pytest's capture would swallow mid-test
    prints)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(
        experiment: str,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
        note: str = "",
    ) -> None:
        materialized = [list(row) for row in rows]  # generators: consume once
        text = _format_table(f"{experiment}: {title}", headers, materialized)
        if note:
            text += f"   note: {note}\n"
        _SESSION_TABLES.append(text)
        out = RESULTS_DIR / f"{experiment.lower()}.txt"
        with out.open("a") as handle:
            handle.write(text)
        json_out = RESULTS_DIR / f"{experiment.lower()}.json"
        tables = (
            json.loads(json_out.read_text()) if json_out.exists() else []
        )
        tables.append(
            {
                "experiment": experiment,
                "title": title,
                "headers": list(headers),
                "rows": materialized,
                "note": note,
            }
        )
        json_out.write_text(
            json.dumps(tables, indent=2, default=str) + "\n"
        )

    # Fresh results per session.
    for stale in RESULTS_DIR.glob("*.txt"):
        stale.unlink()
    for stale in RESULTS_DIR.glob("*.json"):
        stale.unlink()
    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every experiment table after capture has been released."""
    if not _SESSION_TABLES:
        return
    terminalreporter.section("experiment tables (also in benchmarks/results/)")
    for text in _SESSION_TABLES:
        terminalreporter.write(text)


@pytest.fixture(scope="session")
def once_benchmark():
    """Helper: run a callable exactly once under pytest-benchmark timing.

    Experiments that sweep a parameter time each point themselves (via
    time.perf_counter inside the table builder); the pytest-benchmark
    fixture is still exercised so ``--benchmark-only`` collects the test.
    """

    def run(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
