"""A3 — evaluation-engine scaling on growing databases.

The containment experiments (E1-E12) exercise small canonical databases;
this experiment confirms the *evaluation* side scales the way the
product construction predicts: RPQ/2RPQ evaluation grows ~linearly in
|D| x |A| per source node, UC2RPQ adds the join cost, RQ adds the
fixpoint.  Series: database size -> ms per engine.
"""

import time

from repro.crpq.evaluation import evaluate_c2rpq
from repro.crpq.syntax import C2RPQ
from repro.graphdb.generators import social_network
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import TransitiveClosure, edge

SIZES = (50, 100, 200, 400)


def test_a3_engine_scaling(benchmark, report, once_benchmark):
    queries = {
        "RPQ knows+": lambda db: RPQ.parse("knows+").evaluate(db),
        "2RPQ colleagues": lambda db: TwoRPQ.parse("worksAt worksAt-").evaluate(db),
        "UC2RPQ join": lambda db: evaluate_c2rpq(
            C2RPQ.from_strings(
                "x,y", [("knows knows?", "x", "y"), ("worksAt worksAt-", "x", "y")]
            ),
            db,
        ),
        "RQ knows-closure": lambda db: evaluate_rq(
            TransitiveClosure(edge("knows", "x", "y")), db
        ),
    }

    def run():
        rows = []
        for size in SIZES:
            db = social_network(size, avg_friends=3.0, seed=13)
            row = [f"{size} ppl / {db.num_edges} edges"]
            for label, runner in queries.items():
                start = time.perf_counter()
                runner(db)
                row.append(f"{(time.perf_counter() - start) * 1000:.0f}")
            rows.append(row)
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A3",
        "evaluation cost vs database size (ms)",
        ["database"] + list(queries),
        rows,
        note="RPQ/2RPQ stay near-linear per source node; the UC2RPQ join "
        "and RQ fixpoint dominate at scale",
    )
    assert len(rows) == len(SIZES)
