"""A2 — extension: answering RPQs using views (paper §1 motivation).

Rows reported: for a mediated-schema workload, whether a rewriting
exists, whether it is exact, construction cost, and the certain-answer
recall on concrete databases (certain answers / direct answers).  The
claims: rewritings are always sound (recall counts never exceed 1.0 and
wrong answers never appear), and exact rewritings achieve recall 1.0.
"""

import time

from repro.graphdb.generators import random_graph
from repro.rpq.rpq import RPQ
from repro.rpq.views import answer_using_views, rewrite, view_graph

WORKLOAD = [
    (
        "exact composition",
        "(a b)+",
        {"ab": "a b"},
    ),
    (
        "pick the right sources",
        "a b c",
        {"ab": "a b", "c": "c", "bc": "b c"},
    ),
    (
        "closure over a view",
        "a (b a)* ",
        {"a": "a", "ba": "b a"},
    ),
    (
        "partial coverage",
        "a|b b",
        {"va": "a"},
    ),
    (
        "no rewriting",
        "a",
        {"aa": "a a"},
    ),
]


def test_a2_view_rewriting(benchmark, report, once_benchmark):
    def run():
        rows = []
        for label, query_text, view_texts in WORKLOAD:
            query = RPQ.parse(query_text)
            views = {name: RPQ.parse(text) for name, text in view_texts.items()}
            start = time.perf_counter()
            rewriting = rewrite(query, views)
            build_ms = (time.perf_counter() - start) * 1000
            if rewriting.is_empty:
                rows.append([label, "-", "-", f"{build_ms:.1f}", "-"])
                continue
            exact = rewriting.is_exact()
            recalls = []
            for seed in range(3):
                db = random_graph(7, 20, ("a", "b", "c"), seed=seed)
                answers = answer_using_views(rewriting, view_graph(views, db))
                direct = query.evaluate(db)
                assert answers <= direct, (label, seed)  # soundness, always
                recalls.append(
                    len(answers) / len(direct) if direct else 1.0
                )
            rows.append(
                [
                    label,
                    str(rewriting.to_regex()),
                    "exact" if exact else "partial",
                    f"{build_ms:.1f}",
                    f"{sum(recalls) / len(recalls):.2f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A2",
        "maximally contained rewritings over view workload",
        ["instance", "rewriting", "kind", "build ms", "mean recall"],
        rows,
        note="soundness asserted on every database; exact rewritings "
        "must reach recall 1.00",
    )
    for row in rows:
        if row[2] == "exact":
            assert row[4] == "1.00", row
