"""E1 — Lemma 1: RPQ containment ⟺ language containment.

Series reported:
- agreement of the Lemma 1 pipeline with a brute-force language oracle
  on exhaustive small and random larger regex pairs (must be 100%), and
- runtime of the pipeline as regex depth grows (the PSPACE machinery's
  practical cost on benign instances).
"""

import itertools
import random
import time

from repro.automata.dfa import nfa_contains
from repro.automata.regex import parse_regex, random_regex
from repro.rpq.containment import rpq_contained
from repro.rpq.rpq import RPQ

ALPHABET = ("a", "b")

ATOMS = ["a", "b", "a b", "a|b", "a*", "a+", "b a", "(a b)*", "a?"]


def _brute_force_contained(r1, r2, max_length=5) -> bool:
    n1, n2 = r1.to_nfa(), r2.to_nfa()
    for length in range(max_length + 1):
        for word in itertools.product(ALPHABET, repeat=length):
            if n1.accepts(word) and not n2.accepts(word):
                return False
    return True


def test_e01_agreement_with_oracle(benchmark, report, once_benchmark):
    pairs = [(parse_regex(x), parse_regex(y)) for x in ATOMS for y in ATOMS]
    rng = random.Random(1)
    pairs += [
        (random_regex(rng, ALPHABET, 3), random_regex(rng, ALPHABET, 3))
        for _ in range(40)
    ]

    def run():
        agree = disagree = 0
        positives = 0
        for r1, r2 in pairs:
            verdict = rpq_contained(RPQ(r1), RPQ(r2)).holds
            oracle = _brute_force_contained(r1, r2)
            # The oracle is sound for "not contained" only up to length 5;
            # the pipeline is exact, so only verdict=True/oracle=True and
            # verdict=False/oracle<=False are consistent.
            if verdict and not oracle:
                disagree += 1
            else:
                agree += 1
            positives += verdict
        return agree, disagree, positives

    agree, disagree, positives = once_benchmark(benchmark, run)
    report(
        "E1",
        "Lemma 1 pipeline vs brute-force oracle",
        ["pairs", "consistent", "inconsistent", "containments found"],
        [[len(pairs), agree, disagree, positives]],
        note="inconsistent must be 0 (Lemma 1 exactness)",
    )
    assert disagree == 0


def test_e01_scaling_with_depth(benchmark, report, once_benchmark):
    rng = random.Random(7)

    def sweep():
        rows = []
        for depth in (2, 3, 4, 5, 6):
            sample = [
                (random_regex(rng, ALPHABET, depth), random_regex(rng, ALPHABET, depth))
                for _ in range(20)
            ]
            start = time.perf_counter()
            holds = sum(
                rpq_contained(RPQ(r1), RPQ(r2)).holds for r1, r2 in sample
            )
            elapsed = (time.perf_counter() - start) / len(sample)
            rows.append([depth, f"{elapsed * 1000:.2f}", f"{holds}/{len(sample)}"])
        return rows

    rows = once_benchmark(benchmark, sweep)
    report(
        "E1",
        "containment cost vs regex depth",
        ["regex depth", "ms/check", "holds"],
        rows,
        note="worst case is PSPACE; random instances stay in the milliseconds",
    )
