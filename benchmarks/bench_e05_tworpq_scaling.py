"""E5 — Theorem 5: 2RPQ containment, on-the-fly vs materialized.

Series:
- runtime per check as query depth grows, for the production
  (Shepherdson) path and the paper-faithful Lemma 4 on-the-fly path;
- explored-configuration counts, demonstrating why "construct A on the
  fly" (the paper's step 5 remark) matters: the materialized Lemma 4
  pipeline is orders of magnitude more expensive already at toy sizes.
"""

import random
import statistics
import time

from repro.automata.onthefly import SearchStats
from repro.automata.regex import random_regex
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import TwoRPQ

ALPHABET = ("a", "b")


def _sample(rng, depth, count):
    return [
        (
            TwoRPQ(random_regex(rng, ALPHABET, depth, allow_inverse=True)),
            TwoRPQ(random_regex(rng, ALPHABET, depth, allow_inverse=True)),
        )
        for _ in range(count)
    ]


def test_e05_method_scaling(benchmark, report, once_benchmark):
    rng = random.Random(3)

    def run():
        rows = []
        for depth in (1, 2, 3):
            pairs = _sample(rng, depth, 8)
            timings = {"shepherdson": [], "lemma4-onthefly": []}
            for method in timings:
                for q1, q2 in pairs:
                    start = time.perf_counter()
                    two_rpq_contained(q1, q2, method=method)
                    timings[method].append(time.perf_counter() - start)
            rows.append(
                [
                    depth,
                    f"{statistics.median(timings['shepherdson']) * 1000:.2f}",
                    f"{statistics.median(timings['lemma4-onthefly']) * 1000:.2f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E5",
        "median ms/containment check by method",
        ["query depth", "shepherdson (production)", "lemma4 on-the-fly"],
        rows,
        note="both exact; the deterministic-table path wins by construction",
    )


def test_e05_onthefly_vs_materialized(benchmark, report, once_benchmark):
    """The paper's step-5 point: explored states << materialized states."""
    # Right-hand sides kept tiny: materializing the Lemma 4 complement of
    # larger folds exceeds hundreds of thousands of states (that is the
    # experiment's point).
    instances = [("p", "p p-"), ("p", "p p- p"), ("a a", "a a-")]

    def run():
        from repro.automata.alphabet import Alphabet
        from repro.automata.complement import complement_two_nfa
        from repro.automata.fold import fold_two_nfa

        rows = []
        for left, right in instances:
            q1, q2 = TwoRPQ.parse(left), TwoRPQ.parse(right)
            sigma_pm = Alphabet(
                tuple(sorted(q1.base_symbols() | q2.base_symbols()))
            ).two_way
            stats = SearchStats()
            verdict = two_rpq_contained(q1, q2, method="lemma4-onthefly", stats=stats)
            folded = fold_two_nfa(q2.nfa, sigma_pm)
            materialized = complement_two_nfa(folded, max_states=500_000)
            rows.append(
                [
                    left,
                    right,
                    verdict.verdict.value,
                    stats.explored,
                    materialized.num_states,
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E5",
        "on-the-fly explored product configs vs materialized complement size",
        ["Q1", "Q2", "verdict", "explored configs", "materialized states"],
        rows,
        note="on-the-fly explores a small fraction of the complement automaton",
    )
    for row in rows:
        assert row[3] <= row[4] * 4  # explored stays in the same ballpark or below
