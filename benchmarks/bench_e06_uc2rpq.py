"""E6 — Theorem 6 class: UC2RPQ containment via expansions.

Rows reported:
- the paper's Example 1 containments (triangle vs the 2-rule union),
- expansion-count growth as the length bound rises for an infinite-
  language query (the EXPSPACE shadow: the space grows exponentially,
  which is why the bound parameter exists), and
- runtime per verdict for a small mixed workload.
"""

import time

from repro.crpq.containment import uc2rpq_contained
from repro.crpq.expansion import enumerate_expansions
from repro.crpq.syntax import C2RPQ, UC2RPQ, paper_example_1


def test_e06_example1_verdicts(benchmark, report, once_benchmark):
    triangle, union = paper_example_1()

    def run():
        rows = []
        for label, q1, q2 in (
            ("triangle ⊑ union", triangle, union),
            ("union ⊑ triangle", union, triangle),
            ("union ⊑ union", union, union),
        ):
            start = time.perf_counter()
            result = uc2rpq_contained(q1, q2)
            rows.append(
                [
                    label,
                    result.verdict.value,
                    result.details.get("expansions_checked", "-"),
                    f"{(time.perf_counter() - start) * 1000:.1f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E6",
        "Example 1 (paper) containment verdicts",
        ["instance", "verdict", "expansions", "ms"],
        rows,
        note="finite atom languages: all verdicts exact",
    )
    assert rows[0][1] == "holds" and rows[1][1] == "refuted"


def test_e06_expansion_growth(benchmark, report, once_benchmark):
    query = C2RPQ.from_strings(
        "x,z", [("(a|b)*", "x", "y"), ("a+", "y", "z")]
    )

    def run():
        rows = []
        for bound in range(1, 7):
            start = time.perf_counter()
            count = sum(1 for _ in enumerate_expansions(query, bound))
            rows.append([bound, count, f"{(time.perf_counter() - start) * 1000:.1f}"])
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E6",
        "expansion-space growth vs total length bound",
        ["length bound", "expansions", "ms to enumerate"],
        rows,
        note="exponential growth: the practical face of EXPSPACE-hardness",
    )
    counts = [row[1] for row in rows]
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[-1] > 8 * counts[0]


def test_e06_mixed_workload(benchmark, report, once_benchmark):
    workload = [
        (
            "subpattern",
            C2RPQ.from_strings("x,y", [("a", "x", "y"), ("b", "x", "z")]),
            C2RPQ.from_strings("x,y", [("a", "x", "y")]),
        ),
        (
            "star-vs-plus",
            C2RPQ.from_strings("x,y", [("a+", "x", "y")]),
            C2RPQ.from_strings("x,y", [("a a*", "x", "y")]),
        ),
        (
            "two-way",
            C2RPQ.from_strings("x,y", [("a b-", "x", "y")]),
            C2RPQ.from_strings("x,y", [("a b- b b-", "x", "y")]),
        ),
    ]

    def run():
        rows = []
        for label, q1, q2 in workload:
            start = time.perf_counter()
            result = uc2rpq_contained(q1, q2, max_total_length=5)
            rows.append(
                [label, result.verdict.value, f"{(time.perf_counter() - start) * 1000:.1f}"]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E6",
        "mixed UC2RPQ workload",
        ["instance", "verdict", "ms"],
        rows,
    )
