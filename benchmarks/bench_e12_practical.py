"""E12 — Section 4.2: worst-case bounds vs real-world-shaped instances.

The paper's closing argument: 2EXPSPACE-completeness need not doom
practice — SAT and termination provers thrive despite terrible bounds.
This experiment runs the full engine over a corpus of containment
questions shaped like the paper's motivating applications (social
navigation, networking policies, optimizer rewrites) and reports the
fraction decided, verdict mix, and latency distribution.
"""

import statistics
import time

from repro.core.engine import check_containment
from repro.cq.syntax import cq_from_strings
from repro.crpq.syntax import C2RPQ
from repro.datalog.parser import parse_program
from repro.datalog.syntax import transitive_closure_program
from repro.report import Verdict
from repro.rpq.rpq import RPQ, TwoRPQ
from repro.rq.syntax import TransitiveClosure, edge, triangle_plus, triangle_query


def _corpus():
    tc = transitive_closure_program("link", "route")
    safe = parse_program(
        """
        safe(x, y) :- approved(x, y).
        safe(x, z) :- safe(x, y), approved(y, z).
        """,
        goal="safe",
    )
    yield "nav: knows² ⊑ knows+", RPQ.parse("knows knows"), RPQ.parse("knows+")
    yield "nav: knows+ ⊑ knows²", RPQ.parse("knows+"), RPQ.parse("knows knows")
    yield "nav: colleague symmetry", TwoRPQ.parse("worksAt worksAt-"), TwoRPQ.parse(
        "worksAt worksAt- worksAt worksAt-"
    )
    yield "xpath: parent-child roundtrip", TwoRPQ.parse("child"), TwoRPQ.parse(
        "child child- child"
    )
    yield "optimizer: a·a* = a+", RPQ.parse("a a*"), RPQ.parse("a+")
    yield "optimizer: view rewrite", RPQ.parse("a+ b"), RPQ.parse("a* a b")
    yield "pattern: triangle ⊑ edge", triangle_query(), edge("r", "x", "y")
    yield "pattern: triangle ⊑ triangle+", triangle_query(), triangle_plus()
    yield "pattern: triangle+ ⊑ triangle", triangle_plus(), triangle_query()
    yield "net: route ⊑ route", tc, tc
    yield "net: route ⊑ safe", tc, safe
    yield "join: 2 constraints ⊑ 1", C2RPQ.from_strings(
        "x,y", [("knows+", "x", "y"), ("worksAt worksAt-", "x", "y")]
    ), C2RPQ.from_strings("x,y", [("knows+", "x", "y")])
    yield "join: 1 constraint ⊑ 2", C2RPQ.from_strings(
        "x,y", [("knows+", "x", "y")]
    ), C2RPQ.from_strings(
        "x,y", [("knows+", "x", "y"), ("worksAt worksAt-", "x", "y")]
    )
    yield "cq: 3-path ⊑ 2-path", cq_from_strings(
        "x,w", ["e(x,y)", "e(y,z)", "e(z,w)"]
    ), cq_from_strings("x,w", ["e(x,y)", "e(z,w)"])
    yield "cq: core rewrite", cq_from_strings(
        "x", ["e(x,y)", "e(x,z)"]
    ), cq_from_strings("x", ["e(x,y)"])


def test_e12_corpus(benchmark, report, once_benchmark):
    corpus = list(_corpus())

    def run():
        rows = []
        latencies = []
        verdicts = {verdict: 0 for verdict in Verdict}
        for label, q1, q2 in corpus:
            start = time.perf_counter()
            result = check_containment(q1, q2, max_expansions=40)
            elapsed = (time.perf_counter() - start) * 1000
            latencies.append(elapsed)
            verdicts[result.verdict] += 1
            rows.append([label, result.verdict.value, result.method, f"{elapsed:.1f}"])
        return rows, latencies, verdicts

    rows, latencies, verdicts = once_benchmark(benchmark, run)
    report(
        "E12",
        "application-shaped containment corpus",
        ["instance", "verdict", "method", "ms"],
        rows,
    )
    exact = verdicts[Verdict.HOLDS] + verdicts[Verdict.REFUTED]
    report(
        "E12",
        "summary",
        ["instances", "exact verdicts", "bounded verdicts", "median ms", "max ms"],
        [
            [
                len(rows),
                exact,
                verdicts[Verdict.HOLDS_UP_TO_BOUND],
                f"{statistics.median(latencies):.1f}",
                f"{max(latencies):.1f}",
            ]
        ],
        note="the Section 4.2 claim, instantiated: every instance in this "
        "application-shaped corpus is answered interactively despite the "
        "2EXPSPACE worst case",
    )
    assert exact >= len(rows) * 0.6
    assert statistics.median(latencies) < 2_000
