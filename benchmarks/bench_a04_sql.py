"""A4 — cross-engine: SQL recursive CTEs vs the semi-naive fixpoint.

The paper's §1 traces recursion in SQL to common table expressions;
``repro.datalog.to_sql`` makes the connection executable.  Rows: for E+
on growing chains and random graphs, agreement (must be 100%) and
runtime of SQLite's CTE evaluator vs this package's semi-naive engine —
an independent C implementation of the same §2.2 semantics.
"""

import time

from repro.datalog.evaluation import evaluate
from repro.datalog.syntax import transitive_closure_program
from repro.datalog.to_sql import evaluate_via_sql
from repro.relational.generators import chain_instance, random_instance

TC = transitive_closure_program("edge", "tc")


def test_a4_sqlite_agreement_and_speed(benchmark, report, once_benchmark):
    workloads = [
        ("chain-16", chain_instance(16)),
        ("chain-32", chain_instance(32)),
        ("random-20/40", random_instance({"edge": 2}, 20, 40, seed=3)),
        ("random-40/80", random_instance({"edge": 2}, 40, 80, seed=4)),
    ]

    def run():
        rows = []
        for label, edb in workloads:
            start = time.perf_counter()
            ours = evaluate(TC, edb)
            ours_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            theirs = evaluate_via_sql(TC, edb)
            sql_ms = (time.perf_counter() - start) * 1000
            rows.append(
                [
                    label,
                    len(ours),
                    "100%" if ours == theirs else "MISMATCH",
                    f"{ours_ms:.1f}",
                    f"{sql_ms:.1f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A4",
        "E+ via semi-naive fixpoint vs SQLite WITH RECURSIVE",
        ["workload", "tc facts", "agreement", "semi-naive ms", "sqlite ms"],
        rows,
        note="agreement must be 100%: SQLite independently implements the "
        "paper's §2.2 fixpoint semantics",
    )
    assert all(row[2] == "100%" for row in rows)
