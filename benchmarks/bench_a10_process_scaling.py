"""A10 — the process backend as a first-class execution substrate:
cross-backend agreement, crash isolation, multi-core throughput.

The measurements behind DESIGN.md's "Execution substrate" bullet and
EXPERIMENTS.md A10:

1. **Cross-backend differential oracle**: the E1 pair family and the
   serving smoke workload (``workloads/batch_smoke.ndjson``) replayed
   at thread-1 / thread-4 / process-1 / process-4 must produce the
   sequential loop's verdict list bit-for-bit.  Concurrency and the
   pickle boundary may change wall-clock, never answers.  Hard-gated
   on every machine before any timing is reported.
2. **Crash isolation**: a worker killed mid-batch (a poison pill whose
   unpickle is ``os._exit(1)``) must cost exactly its own item — an
   ERROR carrying ``details["error"]`` — while every survivor keeps
   its sequential verdict and the executor keeps accepting work on a
   rebuilt pool.  Hard-gated on every machine.
3. **Multi-core throughput**: complement-blowup pairs (a ``(a|b)^k``
   window after the distinguishing letter forces ~2^k determinization
   states) are CPU-bound enough to amortize pool startup; on >= 2
   cores the process-4 arm must beat the sequential loop by the ISSUE
   10 acceptance target (>= 1.5x).  On a single core the GIL is not
   the bottleneck and a process pool is pure overhead, so the gate is
   *skipped* — never faked — and the honest single-core figures live
   in EXPERIMENTS.md.
"""

import os
import pathlib
import random
import time

import pytest

from repro.automata.regex import parse_regex, random_regex
from repro.cache import clear_caches
from repro.core.batch import (
    ContainmentExecutor,
    check_containment_many,
    sequential_baseline,
)
from repro.obs.perf import _PoisonPill as PoisonPill
from repro.rpq.rpq import RPQ
from repro.serve.protocol import parse_workload

ALPHABET = ("a", "b")

WORKLOAD = pathlib.Path(__file__).parent / "workloads" / "batch_smoke.ndjson"

#: Every (backend, workers) point of the differential oracle.
ARMS = (("thread", 1), ("thread", 4), ("process", 1), ("process", 4))


def _best_of(repeats: int, fn) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _e1_pairs() -> list[tuple[RPQ, RPQ]]:
    atoms = ["a", "b", "a b", "a|b", "a*", "a+"]
    rng = random.Random(1)
    pairs = [
        (RPQ(parse_regex(x)), RPQ(parse_regex(y))) for x in atoms for y in atoms
    ]
    pairs += [
        (RPQ(random_regex(rng, ALPHABET, 3)), RPQ(random_regex(rng, ALPHABET, 3)))
        for _ in range(10)
    ]
    return pairs


def test_a10_cross_backend_agreement(benchmark, report, once_benchmark):
    """Thread and process pools answer exactly like the sequential loop."""
    pairs = _e1_pairs()
    parsed = parse_workload(WORKLOAD.read_text())
    smoke_pairs = [(request.left, request.right) for request in parsed.requests]

    def run():
        expected = [r.verdict.value for r in sequential_baseline(pairs)]
        smoke_expected = [
            r.verdict.value for r in sequential_baseline(smoke_pairs)
        ]
        rows = []
        for backend, workers in ARMS:
            # Hard gate first: the verdict lists must match bit-for-bit
            # before any timing is worth reporting.
            clear_caches()
            batch = check_containment_many(pairs, workers=workers, backend=backend)
            verdicts = [item.result.verdict.value for item in batch.items]
            assert verdicts == expected, f"{backend}-{workers} diverged on E1 pairs"

            clear_caches()
            smoke = check_containment_many(
                smoke_pairs, workers=workers, backend=backend
            )
            smoke_verdicts = [item.result.verdict.value for item in smoke.items]
            assert smoke_verdicts == smoke_expected, (
                f"{backend}-{workers} diverged on {WORKLOAD.name}"
            )

            def arm() -> None:
                clear_caches()
                check_containment_many(pairs, workers=workers, backend=backend)

            rows.append(
                [
                    f"{backend}-{workers}",
                    len(pairs) + len(smoke_pairs),
                    "yes",
                    f"{_best_of(3, arm) * 1000:.2f}",
                ]
            )
        return rows, None

    rows, _ = once_benchmark(benchmark, run)
    report(
        "A10",
        "cross-backend differential oracle: E1 pairs + batch_smoke.ndjson "
        "vs the sequential loop (best of 3, cold caches)",
        ["arm", "pairs checked", "verdicts match", "E1 best ms"],
        rows,
        note="agreement is hard-asserted before timing on every machine; "
        "single-core boxes legitimately show the process arms slower "
        "(serialization overhead, no parallelism to buy it back)",
    )


def test_a10_crash_isolation(benchmark, report, once_benchmark):
    """A dying worker costs its own item, never the batch or the pool."""
    pairs = _e1_pairs()[:4]

    def run():
        expected = [r.verdict.value for r in sequential_baseline(pairs)]
        crash_pairs = list(pairs)
        crash_pairs.insert(2, (PoisonPill(), PoisonPill()))
        clear_caches()
        items = check_containment_many(
            crash_pairs, workers=2, backend="process"
        ).items

        poison = items[2].result
        assert poison.verdict.value == "error"
        assert "error" in poison.details, "ERROR item must carry details['error']"
        survivors = [
            item.result.verdict.value
            for index, item in enumerate(items)
            if index != 2
        ]
        assert survivors == expected, "a crash must not disturb other items"

        # The executor survives the poison too: the rebuilt pool keeps
        # accepting work in the same session.
        with ContainmentExecutor(workers=1, backend="process") as executor:
            executor.submit(PoisonPill(), PoisonPill()).result()
            after = executor.submit(*pairs[0]).result()
        assert after.result.verdict.value == expected[0]

        rows = [
            [
                len(crash_pairs),
                poison.verdict.value,
                "yes",
                "yes",
            ]
        ]
        return rows, None

    rows, _ = once_benchmark(benchmark, run)
    report(
        "A10",
        "crash isolation: poison pill (unpickle = os._exit) mid-batch, "
        "2 process workers",
        ["items", "poison verdict", "survivors intact", "accepts after crash"],
        rows,
        note="the poison is retried once in quarantine on a rebuilt pool "
        "(so one crash never condemns an innocent in-flight item), then "
        "resolved as an isolated ERROR",
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-pool speedup needs >= 2 cores; on one core the pool "
    "is pure overhead and the gate would measure the box, not the code",
)
def test_a10_multicore_speedup(benchmark, report, once_benchmark):
    """Process-4 beats the sequential loop >= 1.5x on CPU-bound pairs."""
    window = " ".join(["(a|b)"] * 8)
    pairs = []
    for index in range(12):
        prefix = " ".join(
            "a" if (index >> bit) & 1 else "b" for bit in range(4)
        )
        pairs.append(
            (
                RPQ(parse_regex(f"{prefix} (a|b)* b {window}")),
                RPQ(parse_regex(f"{prefix} (a|b)* a {window}")),
            )
        )

    def run():
        expected = [r.verdict.value for r in sequential_baseline(pairs)]
        clear_caches()
        batch = check_containment_many(pairs, workers=4, backend="process")
        verdicts = [item.result.verdict.value for item in batch.items]
        assert verdicts == expected  # agreement gate, even here

        def arm_sequential() -> None:
            clear_caches()
            sequential_baseline(pairs)

        def arm_process_4() -> None:
            clear_caches()
            check_containment_many(pairs, workers=4, backend="process")

        sequential_s = _best_of(3, arm_sequential)
        process_s = _best_of(3, arm_process_4)
        speedup = sequential_s / process_s
        rows = [
            [
                len(pairs),
                os.cpu_count(),
                f"{sequential_s * 1000:.1f}",
                f"{process_s * 1000:.1f}",
                f"{speedup:.2f}x",
            ]
        ]
        return rows, speedup

    rows, speedup = once_benchmark(benchmark, run)
    report(
        "A10",
        "multi-core throughput: 12 complement-blowup pairs, sequential vs "
        "4 process workers (best of 3, cold caches)",
        ["pairs", "cores", "sequential ms", "process-4 ms", "speedup"],
        rows,
        note="pairs are (a|b)-window determinization blow-ups (~2^8 states "
        "each) so per-item compute dwarfs pickle + pool startup",
    )
    assert speedup >= 1.5  # ISSUE 10 acceptance target
