"""A6 — observability overhead ablation.

The tracing/metrics subsystem is pay-for-what-you-use: kernels guard
every span with a ``tracer is not None`` pointer test, towers use the
shared null scope, and the engine only touches two hoisted metric
counters on the hot path.  This experiment measures what that costs:

1. **Kernel path** (``containment_counterexample``): the E1 workload
   (20 random depth-8 RPQ pairs, caching off) with tracing disabled vs
   a live ``Tracer``.  The disabled path is what the <3% acceptance
   bound is judged against; pre-change numbers are in EXPERIMENTS.md.
2. **Engine path** (``check_containment``): cold (caching off) and
   warm (cache hit) checks, trace off vs on.
3. **Serving telemetry** (``Telemetry.observe``): the per-frame
   accounting the server adds around every check — record build +
   flight-recorder ring write, sampling disabled, no access log.

Traced and untraced runs must produce identical answers — tracing is
observation, never behavior.
"""

import random
import time

from repro.automata.dfa import containment_counterexample
from repro.cache import clear_caches, use_caching
from repro.core.engine import check_containment
from repro.automata.regex import random_regex
from repro.obs.telemetry import Telemetry, TelemetryConfig, access_record
from repro.obs.trace import Tracer
from repro.rpq.rpq import RPQ

ALPHABET = ("a", "b")


def _pairs(count=20, depth=8, seed=7):
    rng = random.Random(seed)
    pairs = [
        (RPQ(random_regex(rng, ALPHABET, depth)), RPQ(random_regex(rng, ALPHABET, depth)))
        for _ in range(count)
    ]
    for q1, q2 in pairs:  # compile outside any timed region
        _ = q1.nfa, q2.nfa
    return pairs


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000


def test_a6_kernel_trace_overhead(benchmark, report, once_benchmark):
    """containment_counterexample on the E1 workload: tracer off vs on."""
    nfas = [(q1.nfa, q2.nfa) for q1, q2 in _pairs()]

    def run():
        with use_caching(False):
            # Warm-up passes so neither arm pays one-time costs; the
            # answers must agree exactly.
            answers_off = [
                containment_counterexample(n1, n2, ALPHABET) for n1, n2 in nfas
            ]
            answers_on = [
                containment_counterexample(n1, n2, ALPHABET, tracer=Tracer())
                for n1, n2 in nfas
            ]
            off = _best_of(
                5,
                lambda: [
                    containment_counterexample(n1, n2, ALPHABET)
                    for n1, n2 in nfas
                ],
            )
            on = _best_of(
                5,
                lambda: [
                    containment_counterexample(n1, n2, ALPHABET, tracer=Tracer())
                    for n1, n2 in nfas
                ],
            )
        assert answers_off == answers_on  # observation, not behavior
        per_off = off / len(nfas)
        per_on = on / len(nfas)
        return [[
            len(nfas),
            f"{per_off:.4f}",
            f"{per_on:.4f}",
            f"{(per_on / per_off - 1) * 100:+.1f}%",
        ]], per_off

    rows, per_off = once_benchmark(benchmark, run)
    report(
        "A6",
        "kernel tracing ablation (containment_counterexample, E1 workload, "
        "caching off)",
        ["pairs", "ms/check trace-off", "ms/check trace-on", "traced overhead"],
        rows,
        note="trace-off is the default path; pre-change baseline 0.0186 "
        "ms/check (EXPERIMENTS.md A6)",
    )
    # The disabled path must stay in the same regime as the pre-change
    # baseline.  3x (not 3%) here: absolute wall-clock on shared CI is
    # noisy; the tight <3% claim is checked on quiet hardware and
    # recorded in EXPERIMENTS.md.
    assert per_off < 3 * 0.0186


def test_a6_engine_trace_overhead(benchmark, report, once_benchmark):
    """check_containment cold/warm: trace off vs on."""
    pairs = _pairs(count=4, depth=6, seed=13)

    def run():
        rows = []
        with use_caching(False):
            cold_off = _best_of(
                3, lambda: [check_containment(q1, q2) for q1, q2 in pairs]
            )
            cold_on = _best_of(
                3,
                lambda: [
                    check_containment(q1, q2, trace=True) for q1, q2 in pairs
                ],
            )
        rows.append(
            ["cold (caching off)", f"{cold_off:.3f}", f"{cold_on:.3f}",
             f"{(cold_on / cold_off - 1) * 100:+.1f}%"]
        )
        clear_caches()
        for q1, q2 in pairs:  # populate the result cache
            check_containment(q1, q2)
        warm_off = _best_of(
            5, lambda: [check_containment(q1, q2) for q1, q2 in pairs]
        )
        warm_on = _best_of(
            5,
            lambda: [check_containment(q1, q2, trace=True) for q1, q2 in pairs],
        )
        rows.append(
            ["warm (cache hits)", f"{warm_off:.3f}", f"{warm_on:.3f}",
             f"{(warm_on / warm_off - 1) * 100:+.1f}%"]
        )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "A6",
        "engine tracing ablation (4 RPQ pairs per pass)",
        ["pass", "ms trace-off", "ms trace-on", "traced overhead"],
        rows,
        note="trace-off warm hits add two counter increments over the "
        "pre-change path; traces are never cached",
    )


def test_a6_serving_telemetry_overhead(benchmark, report, once_benchmark):
    """check loop bare vs with per-frame ``Telemetry.observe``."""
    pairs = _pairs(count=4, depth=6, seed=29)
    telemetry = Telemetry(TelemetryConfig(sample_rate=0.0, access_log=None))

    def bare():
        for q1, q2 in pairs:
            check_containment(q1, q2)

    def observed():
        for index, (q1, q2) in enumerate(pairs):
            telemetry.sample()
            start = time.perf_counter()
            item = check_containment(q1, q2)
            exec_ms = (time.perf_counter() - start) * 1000
            telemetry.observe(
                access_record(
                    request_id=f"bench-{index:06d}",
                    op="contain",
                    index=index,
                    exec_ms=exec_ms,
                    total_ms=exec_ms,
                )
            )

    def run():
        clear_caches()
        for q1, q2 in pairs:  # warm the result cache for both arms
            check_containment(q1, q2)
        bare(), observed()  # warm-up passes
        off = _best_of(5, bare)
        on = _best_of(5, observed)
        ratio = on / off
        return [[
            len(pairs),
            f"{off:.3f}",
            f"{on:.3f}",
            f"{(ratio - 1) * 100:+.1f}%",
        ]], ratio

    rows, ratio = once_benchmark(benchmark, run)
    report(
        "A6",
        "serving telemetry ablation (warm checks, sampling off, no "
        "access log)",
        ["pairs", "ms bare", "ms observed", "telemetry overhead"],
        rows,
        note="observed arm pays record build + flight-ring append per "
        "frame; the access log and live tracing stay pay-for-use",
    )
    # Warm cache hits are microseconds, so the relative bar is loose:
    # the accounting must stay the same order of magnitude as the
    # check itself on shared CI hardware.
    assert ratio < 10
