"""E4 — Lemma 4: single-exponential 2NFA complementation.

Series: 2NFA size n -> reachable states of (a) Lemma 4's complement NFA
and (b) the classical convert-then-complement baseline (Shepherdson
determinization, whose complement is free but whose table space is
2^{n + n^2}-shaped).  The shape claim: both are exponential, Lemma 4's
exponent is linear in n and the measured sizes stay far below the naive
doubly-exponential 2^{2^n} a convert-to-NFA-then-subset pipeline costs.
"""

import time

from repro.automata.alphabet import Alphabet
from repro.automata.complement import complement_two_nfa, lemma4_state_bound
from repro.automata.dfa import reduce_nfa
from repro.automata.fold import fold_two_nfa
from repro.automata.regex import parse_regex
from repro.automata.shepherdson import two_nfa_to_dfa

# Folds of word queries give a graded family of well-behaved 2NFAs.
# (One more letter roughly squares the reachable complement: the family
# stops where a laptop run stops being interactive.)
FAMILY = ["p", "p p", "p p-", "p? p", "p p- p"]


def test_e04_complement_sizes(benchmark, report, once_benchmark):
    sigma_pm = Alphabet(("p",)).two_way

    def run():
        rows = []
        for text in FAMILY:
            two = fold_two_nfa(reduce_nfa(parse_regex(text).to_nfa()), sigma_pm)
            n = two.num_states
            start = time.perf_counter()
            lemma4 = complement_two_nfa(two, max_states=200_000)
            lemma4_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            shepherdson = two_nfa_to_dfa(two, max_states=200_000)
            shepherdson_ms = (time.perf_counter() - start) * 1000
            rows.append(
                [
                    f"fold({text})",
                    n,
                    lemma4.num_states,
                    lemma4_state_bound(two),
                    f"{lemma4_ms:.1f}",
                    shepherdson.num_states,
                    f"{shepherdson_ms:.1f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E4",
        "complementation blow-up: Lemma 4 vs Shepherdson baseline",
        [
            "2NFA",
            "n",
            "Lemma4 states",
            "4^n bound",
            "Lemma4 ms",
            "Shepherdson states",
            "Shepherdson ms",
        ],
        rows,
        note="reachable Lemma4 states stay within 4^n; baseline tables are "
        "far smaller here but the baseline determinizes (no on-the-fly use)",
    )
    for row in rows:
        assert row[2] <= row[3]


def test_e04_growth_shape(benchmark, report, once_benchmark):
    """Lemma 4 reachable size grows with n; log-size roughly linear."""
    sigma_pm = Alphabet(("p",)).two_way

    def run():
        import math

        rows = []
        for text in ("p", "p p", "p p- p"):
            two = fold_two_nfa(reduce_nfa(parse_regex(text).to_nfa()), sigma_pm)
            complement = complement_two_nfa(two, max_states=200_000)
            rows.append(
                [
                    two.num_states,
                    complement.num_states,
                    f"{math.log2(complement.num_states) / two.num_states:.2f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E4",
        "log2(reachable complement states) / n",
        ["n", "states", "log2(states)/n"],
        rows,
        note="bounded by 2 (the 4^n = 2^{2n} exponent), confirming 2^{O(n)}",
    )
