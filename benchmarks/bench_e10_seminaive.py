"""E10 — Section 2.2 semantics: fixpoint engines (naive vs semi-naive).

Series reported:
- runtime of naive vs semi-naive evaluation of E+ as the chain length
  grows (the ablation DESIGN.md calls out: semi-naive wins and the gap
  widens with depth),
- the same on cyclic and DAG-shaped inputs, and
- the convergence ladder P^1 ⊆ P^2 ⊆ ... = P^inf on a fixed input.
"""

import time

from repro.datalog.evaluation import (
    EvaluationStats,
    bounded_evaluate,
    naive_evaluate,
    seminaive_evaluate,
)
from repro.datalog.syntax import transitive_closure_program
from repro.graphdb.generators import layered_dag, random_graph
from repro.relational.generators import chain_instance
from repro.relational.instance import Instance, graph_to_instance

TC = transitive_closure_program("edge", "tc")


def _cycle_instance(length: int) -> Instance:
    db = Instance()
    for index in range(length):
        db.add("edge", (index, (index + 1) % length))
    return db


def test_e10_chain_scaling(benchmark, report, once_benchmark):
    def run():
        rows = []
        for length in (8, 16, 24, 32):
            db = chain_instance(length)
            naive_stats, semi_stats = EvaluationStats(), EvaluationStats()
            start = time.perf_counter()
            naive = naive_evaluate(TC, db, naive_stats)
            naive_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            semi = seminaive_evaluate(TC, db, semi_stats)
            semi_ms = (time.perf_counter() - start) * 1000
            assert naive == semi
            rows.append(
                [
                    length,
                    len(naive["tc"]),
                    naive_stats.iterations,
                    f"{naive_ms:.1f}",
                    semi_stats.iterations,
                    f"{semi_ms:.1f}",
                    f"{naive_ms / max(semi_ms, 1e-9):.1f}x",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E10",
        "E+ fixpoint on chains: naive vs semi-naive",
        ["chain", "facts", "naive iters", "naive ms", "semi iters", "semi ms", "speedup"],
        rows,
        note="speedup grows with chain length (naive re-derives everything "
        "each round)",
    )
    # The crossover claim: semi-naive wins on the longest chain.
    assert float(rows[-1][-1].rstrip("x")) > 1.0


def test_e10_shape_sensitivity(benchmark, report, once_benchmark):
    shapes = {
        "cycle-20": _cycle_instance(20),
        "dag-5x4": graph_to_instance(
            layered_dag(5, 4, labels=("edge",), density=0.6, seed=1)
        ),
        "random-30/60": graph_to_instance(
            random_graph(30, 60, ("edge",), seed=2)
        ),
    }

    def run():
        rows = []
        for name, db in shapes.items():
            naive_stats, semi_stats = EvaluationStats(), EvaluationStats()
            start = time.perf_counter()
            naive_evaluate(TC, db, naive_stats)
            naive_ms = (time.perf_counter() - start) * 1000
            start = time.perf_counter()
            seminaive_evaluate(TC, db, semi_stats)
            semi_ms = (time.perf_counter() - start) * 1000
            rows.append(
                [
                    name,
                    naive_stats.facts_derived,
                    f"{naive_ms:.1f}",
                    f"{semi_ms:.1f}",
                    f"{naive_ms / max(semi_ms, 1e-9):.1f}x",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E10",
        "E+ fixpoint by input shape",
        ["input", "tc facts", "naive ms", "semi ms", "speedup"],
        rows,
    )


def test_e10_convergence_ladder(benchmark, report, once_benchmark):
    db = chain_instance(10)

    def run():
        rows = []
        previous = frozenset()
        for rounds in range(1, 12):
            stage = bounded_evaluate(TC, db, rounds)
            rows.append([rounds, len(stage), len(stage) - len(previous)])
            if stage == previous:
                break
            previous = stage
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E10",
        "P^i convergence on a 10-chain (P^inf = U_i P^i, §2.2)",
        ["i", "|P^i|", "new facts"],
        rows,
        note="monotone, stabilizes at the fixpoint",
    )
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes)
