"""E7 — Theorem 7 class: RQ containment.

Rows reported:
- verdicts on the triangle/triangle+ family (the paper's flagship RQ),
- expansion-count and runtime growth as the application bound deepens
  (the 2EXPSPACE shadow), and
- the exact/bounded split: TC-free left sides get unconditional HOLDS.
"""

import time

from repro.rq.containment import rq_contained
from repro.rq.syntax import (
    Or,
    TransitiveClosure,
    edge,
    path_query,
    triangle_plus,
    triangle_query,
)


def test_e07_triangle_family(benchmark, report, once_benchmark):
    instances = [
        ("triangle ⊑ triangle+", triangle_query(), triangle_plus()),
        ("triangle+ ⊑ triangle", triangle_plus(), triangle_query()),
        ("edge ⊑ edge+", edge("r", "x", "y"), TransitiveClosure(edge("r", "x", "y"))),
        ("edge+ ⊑ edge", TransitiveClosure(edge("r", "x", "y")), edge("r", "x", "y")),
        (
            "e+ ⊑ (e|f)+",
            TransitiveClosure(edge("e", "x", "y")),
            TransitiveClosure(Or(edge("e", "x", "y"), edge("f", "x", "y"))),
        ),
    ]

    def run():
        rows = []
        for label, q1, q2 in instances:
            start = time.perf_counter()
            result = rq_contained(q1, q2, max_applications=24, max_expansions=150)
            rows.append(
                [
                    label,
                    result.verdict.value,
                    result.details.get("expansions_checked", "-"),
                    f"{(time.perf_counter() - start) * 1000:.1f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E7",
        "RQ containment on the triangle/TC family",
        ["instance", "verdict", "expansions", "ms"],
        rows,
        note="TC-free left sides yield exact HOLDS; recursive ones are bounded",
    )
    verdicts = {row[0]: row[1] for row in rows}
    assert verdicts["triangle ⊑ triangle+"] == "holds"
    assert verdicts["triangle+ ⊑ triangle"] == "refuted"
    assert verdicts["edge+ ⊑ edge"] == "refuted"


def test_e07_budget_scaling(benchmark, report, once_benchmark):
    """Cost of deepening the expansion exploration for tri+ ⊑ tri+."""
    tp = triangle_plus()

    def run():
        rows = []
        for applications in (8, 16, 24, 32):
            start = time.perf_counter()
            result = rq_contained(
                tp, tp, max_applications=applications, max_expansions=10_000
            )
            rows.append(
                [
                    applications,
                    result.details["expansions_checked"],
                    f"{(time.perf_counter() - start) * 1000:.0f}",
                    result.verdict.value,
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E7",
        "expansion exploration vs application bound (triangle+ ⊑ triangle+)",
        ["application bound", "expansions checked", "ms", "verdict"],
        rows,
        note="each extra TC unrolling multiplies the canonical databases — "
        "the practical face of 2EXPSPACE-hardness",
    )
    counts = [row[1] for row in rows]
    assert counts == sorted(counts)


def test_e07_exactness_split(benchmark, report, once_benchmark):
    def run():
        exact = rq_contained(path_query(["e", "e"]), TransitiveClosure(edge("e", "x", "y")))
        bounded = rq_contained(
            TransitiveClosure(edge("e", "x", "y")),
            TransitiveClosure(edge("e", "x", "y")),
            max_expansions=30,
        )
        return [
            ["e;e ⊑ e+ (TC-free left)", exact.verdict.value],
            ["e+ ⊑ e+ (recursive left)", bounded.verdict.value],
        ]

    rows = once_benchmark(benchmark, run)
    report(
        "E7",
        "verdict kinds by left-side recursion",
        ["instance", "verdict"],
        rows,
        note="the HOLDS / HOLDS_UP_TO_BOUND split is the DESIGN.md contract",
    )
    assert rows[0][1] == "holds" and rows[1][1] == "holds_up_to_bound"
