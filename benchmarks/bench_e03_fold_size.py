"""E3 — Lemma 3: the fold 2NFA is small.

Series: NFA states n x alphabet size |Sigma| -> states of the fold 2NFA,
against the paper's bound n(|Sigma±|+1).  The end-marker construction
achieves exactly 2n, independent of the alphabet — strictly inside the
bound for every alphabet.
"""

import random

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import reduce_nfa
from repro.automata.fold import fold_two_nfa, lemma3_state_bound
from repro.automata.regex import random_regex


def test_e03_fold_state_counts(benchmark, report, once_benchmark):
    rng = random.Random(5)

    def run():
        rows = []
        for sigma_size in (1, 2, 3):
            alphabet = tuple("abc"[:sigma_size])
            sigma_pm = Alphabet(alphabet).two_way
            for depth in (2, 3, 4, 5):
                nfa = reduce_nfa(
                    random_regex(rng, alphabet, depth, allow_inverse=True).to_nfa()
                )
                if nfa.num_states == 0:
                    continue
                folded = fold_two_nfa(nfa, sigma_pm)
                bound = lemma3_state_bound(nfa, sigma_pm)
                rows.append(
                    [
                        sigma_size,
                        nfa.num_states,
                        folded.num_states,
                        bound,
                        "OK" if folded.num_states <= bound else "VIOLATION",
                    ]
                )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E3",
        "fold-2NFA size vs Lemma 3 bound n(|Sigma±|+1)",
        ["|Sigma|", "NFA states n", "fold 2NFA states", "paper bound", "within"],
        rows,
        note="marker-based construction gives exactly 2n",
    )
    assert all(row[4] == "OK" for row in rows)
    assert all(row[2] == 2 * row[1] for row in rows)
