"""E8 — Theorem 8 / Section 4.1: the RQ-Datalog bridge and GRQ.

Rows reported:
- semantic agreement of the Section 4.1 translation on random graphs
  (algebra evaluation vs semi-naive Datalog, per operator; must be 100%),
- GRQ membership classification over a program corpus (the fragment
  boundary the paper draws), and
- preservation of CQ containment under the binary encoding (the
  arity-reduction step of the Theorem 8 proof).
"""

import time

from repro.cq.containment import cq_contained
from repro.cq.syntax import cq_from_strings
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.graphdb.generators import random_graph
from repro.grq.encoding import encode_cq
from repro.grq.membership import check_grq
from repro.relational.instance import graph_to_instance
from repro.rq.evaluation import evaluate_rq
from repro.rq.syntax import (
    Or,
    Project,
    Select,
    TransitiveClosure,
    edge,
    path_query,
    triangle_plus,
    triangle_query,
)
from repro.rq.to_datalog import rq_to_datalog
from repro.cq.syntax import Var

OPERATOR_QUERIES = {
    "atom": edge("a", "x", "y"),
    "inverse": edge("a-", "x", "y"),
    "select": Select(
        path_query(["a", "b"]), Var("x"), Var("y")
    ),
    "project": Project(edge("a", "x", "y"), (Var("x"),)),
    "union": Or(edge("a", "x", "y"), edge("b", "x", "y")),
    "conjunction": triangle_query("a"),
    "tc": TransitiveClosure(edge("a", "x", "y")),
    "nested-tc": triangle_plus("a"),
}


def test_e08_translation_agreement(benchmark, report, once_benchmark):
    def run():
        rows = []
        for name, query in OPERATOR_QUERIES.items():
            program = rq_to_datalog(query)
            agree = True
            algebra_ms = datalog_ms = 0.0
            for seed in range(4):
                db = random_graph(6, 14, ("a", "b"), seed=seed)
                start = time.perf_counter()
                via_algebra = evaluate_rq(query, db)
                algebra_ms += time.perf_counter() - start
                start = time.perf_counter()
                via_datalog = evaluate(program, graph_to_instance(db))
                datalog_ms += time.perf_counter() - start
                agree &= via_algebra == via_datalog
            rows.append(
                [
                    name,
                    "100%" if agree else "MISMATCH",
                    f"{algebra_ms * 250:.1f}",
                    f"{datalog_ms * 250:.1f}",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E8",
        "Section 4.1 translation: algebra vs semi-naive Datalog",
        ["operator", "agreement", "algebra ms/graph", "datalog ms/graph"],
        rows,
        note="agreement must be 100% for every operator",
    )
    assert all(row[1] == "100%" for row in rows)


PROGRAM_CORPUS = {
    "tc-left": transitive_closure_program(left_linear=True),
    "tc-right": transitive_closure_program(left_linear=False),
    "monadic-reach": reachability_program(),
    "nonlinear-tc": parse_program(
        "t(x,y) :- e(x,y). t(x,z) :- t(x,y), t(y,z)."
    ),
    "mutual": parse_program(
        """
        a(x, z) :- b(x, y), e(y, z).
        b(x, z) :- a(x, y), e(y, z).
        a(x, y) :- e(x, y).
        """,
        goal="a",
    ),
    "stacked-tc": parse_program(
        """
        inner(x, y) :- e(x, y).
        inner(x, z) :- inner(x, y), e(y, z).
        outer(x, y) :- inner(x, y).
        outer(x, z) :- outer(x, y), inner(y, z).
        """,
        goal="outer",
    ),
    "nonrecursive": parse_program("p(x, z) :- e(x, y), e(y, z)."),
}


def test_e08_grq_membership_corpus(benchmark, report, once_benchmark):
    def run():
        rows = []
        for name, program in PROGRAM_CORPUS.items():
            result = check_grq(program)
            rows.append(
                [
                    name,
                    "GRQ" if result.is_grq else "not GRQ",
                    result.violations[0][:60] if result.violations else "",
                ]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E8",
        "GRQ membership over the program corpus",
        ["program", "class", "first violation"],
        rows,
        note="TC-shaped recursion in, everything else out (Section 4.1)",
    )
    classes = {row[0]: row[1] for row in rows}
    assert classes["tc-left"] == "GRQ" and classes["monadic-reach"] == "not GRQ"


ENCODING_PAIRS = [
    ("R(x,y,z)", "R(x,y,z)"),
    ("R(x,y,z)&R(y,z,x)", "R(x,y,z)"),
    ("R(x,x,y)", "R(x,y,z)"),
    ("R(x,y,z)", "R(x,x,y)"),
    ("R(x,y,y)", "R(x,y,z)&R(x,u,u)"),
]


def test_e08_encoding_preserves_containment(benchmark, report, once_benchmark):
    def run():
        rows = []
        for left, right in ENCODING_PAIRS:
            q1 = cq_from_strings("x", left.split("&"))
            q2 = cq_from_strings("x", right.split("&"))
            plain = cq_contained(q1, q2)
            encoded = cq_contained(encode_cq(q1), encode_cq(q2))
            rows.append([left, right, plain, encoded, plain == encoded])
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E8",
        "binary encoding preserves CQ containment (arity reduction)",
        ["Q1", "Q2", "plain", "encoded", "agree"],
        rows,
        note="agreement in every row is the Theorem 8 reduction's key lemma",
    )
    assert all(row[4] for row in rows)
