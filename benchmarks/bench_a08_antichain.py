"""A8 — antichain containment kernel vs the plain subset-search baseline.

The measurements behind DESIGN.md's "Antichain containment" section:

1. **Blow-up family** ``(a|b)* a (a|b)^n`` vs the same expression with
   an ``n+1`` suffix: the right-hand incremental determinization is the
   classic ``2^n`` subset blow-up.  The subset kernel explores every
   reachable ``(left state, right subset)`` configuration; the antichain
   kernel discards any configuration simulation-subsumed by an explored
   one, collapsing the frontier to ~O(n) kept configurations.  Verdicts
   must agree and witnesses must have equal (shortest) length on both
   arms — the ablation's hard gate.
2. **E1 workload** (random regex pairs): the no-regression check on
   instances without structural blow-up, where the simulation
   preprocessing is pure overhead the antichain kernel must absorb.

Query *compilation* is hoisted out of every timed region (both arms
share the same prebuilt NFAs; the kernels accelerate the search, not
parsing).  NFAs are raw Thompson constructions — ``reduce_nfa`` would
pre-minimize the right side into a DFA and hide exactly the blow-up
the antichain subsumption is built to avoid.
"""

import random
import time

from repro.automata.dfa import containment_counterexample
from repro.automata.regex import parse_regex, random_regex
from repro.cache import clear_caches

ALPHABET = ("a", "b")


def _blowup_pair(n: int):
    suffix = " ".join(["(a|b)"] * n)
    left = parse_regex(f"(a|b)* a {suffix}").to_nfa().trim().renumber()
    right = parse_regex(f"(a|b)* a (a|b) {suffix}").to_nfa().trim().renumber()
    return left, right


def test_a8_blowup_family(benchmark, report, once_benchmark):
    """Blow-up family: subset vs antichain kernel, verdicts cross-checked."""
    sizes = (6, 8, 10, 12)
    pairs = {n: _blowup_pair(n) for n in sizes}

    def run():
        rows = []
        speedups = []
        for n in sizes:
            left, right = pairs[n]
            timings: dict[str, float] = {}
            outcomes: dict[str, object] = {}
            stats: dict[str, dict] = {}
            for kernel in ("subset", "antichain"):
                best = None
                for _ in range(3):
                    clear_caches()
                    kernel_stats: dict = {}
                    start = time.perf_counter()
                    outcomes[kernel] = containment_counterexample(
                        left, right, ALPHABET,
                        kernel=kernel, kernel_stats=kernel_stats,
                    )
                    elapsed = time.perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                timings[kernel] = best
                stats[kernel] = kernel_stats
            sub, anti = outcomes["subset"], outcomes["antichain"]
            assert (sub is None) == (anti is None)  # identical verdicts
            if sub is not None:
                assert len(sub) == len(anti)  # both searches are shortest-word
                assert left.accepts(anti) and not right.accepts(anti)
            speedup = timings["subset"] / timings["antichain"]
            speedups.append(speedup)
            rows.append(
                [
                    n,
                    stats["subset"]["configs"],
                    stats["antichain"]["configs"],
                    stats["antichain"]["subsumption_hits"],
                    f"{timings['subset'] * 1000:.2f}",
                    f"{timings['antichain'] * 1000:.2f}",
                    f"{speedup:.1f}x",
                ]
            )
        return rows, speedups

    rows, speedups = once_benchmark(benchmark, run)
    report(
        "A8",
        "blow-up family (a|b)* a (a|b)^n: subset vs antichain kernel (best of 3)",
        [
            "n",
            "subset configs",
            "antichain configs",
            "subsumption hits",
            "subset ms",
            "antichain ms",
            "speedup",
        ],
        rows,
        note="verdicts identical, witnesses equal-length and verified on both arms; "
        "configs grow ~2^n on the subset arm, ~n on the antichain arm",
    )
    # The ISSUE's acceptance target: >= 2x on at least one blow-up point
    # (in practice every point past n=6 clears it by a wide margin).
    assert max(speedups) >= 2.0
    assert speedups[-1] >= 2.0  # and specifically on the largest point


def test_a8_random_pairs_no_regression(benchmark, report, once_benchmark):
    """E1-style random pairs: antichain must absorb its preprocessing."""
    rng = random.Random(7)
    suites = {
        depth: [
            (
                random_regex(rng, ALPHABET, depth).to_nfa().trim().renumber(),
                random_regex(rng, ALPHABET, depth).to_nfa().trim().renumber(),
            )
            for _ in range(20)
        ]
        for depth in (3, 4, 5)
    }

    def run():
        rows = []
        ratios = []
        for depth, pairs in suites.items():
            timings: dict[str, float] = {}
            outcomes: dict[str, list] = {}
            for kernel in ("subset", "antichain"):
                best = None
                for _ in range(3):
                    clear_caches()
                    start = time.perf_counter()
                    outcomes[kernel] = [
                        containment_counterexample(n1, n2, ALPHABET, kernel=kernel)
                        for n1, n2 in pairs
                    ]
                    elapsed = time.perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                timings[kernel] = best
            for (n1, n2), sub, anti in zip(
                pairs, outcomes["subset"], outcomes["antichain"]
            ):
                assert (sub is None) == (anti is None)
                if sub is not None:
                    assert len(sub) == len(anti)
                    assert n1.accepts(anti) and not n2.accepts(anti)
            ratio = timings["antichain"] / timings["subset"]
            ratios.append(ratio)
            rows.append(
                [
                    depth,
                    f"{timings['subset'] / len(pairs) * 1000:.3f}",
                    f"{timings['antichain'] / len(pairs) * 1000:.3f}",
                    f"{ratio:.2f}",
                ]
            )
        return rows, ratios

    rows, ratios = once_benchmark(benchmark, run)
    report(
        "A8",
        "random regex pairs: antichain overhead on non-blow-up instances "
        "(20 pairs/depth, best of 3)",
        ["regex depth", "subset ms/check", "antichain ms/check", "antichain/subset"],
        rows,
        note="the simulation preprocessing must not dominate when there is "
        "nothing to prune; ratios near 1 are the goal here, not speedups",
    )
    # Soft sanity bound: preprocessing overhead stays within 4x even on
    # tiny instances where the search itself is microseconds.
    assert all(ratio <= 4.0 for ratio in ratios)
