"""E9 — Section 2.2/2.3: nonrecursive Datalog ≡ UCQ; the monadic boundary.

Rows reported:
- unfolding sizes and semantic-agreement of nonrecursive programs
  against their UCQ unfoldings (must agree on every sampled instance),
- the unfolding blow-up as IDB layering deepens (the "possible blow-up
  in size" the paper notes for positive-existential normal forms), and
- classification of the paper's programs along the Monadic/TC boundary.
"""

import time

from repro.cq.evaluation import evaluate_ucq
from repro.datalog.analysis import is_monadic, is_nonrecursive
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.syntax import reachability_program, transitive_closure_program
from repro.datalog.unfolding import unfold_nonrecursive
from repro.relational.generators import random_instance


def _layered_program(depth: int, branch: int = 2):
    """`depth` layers of IDB, each defined by `branch` rules over the next."""
    lines = []
    for level in range(depth):
        below = f"l{level + 1}" if level + 1 < depth else "base"
        for variant in range(branch):
            mid = f"m{level}v{variant}"
            lines.append(f"l{level}(x, y) :- {below}(x, {mid}), {below}({mid}, y).")
    return parse_program("\n".join(lines), goal="l0")


def test_e09_unfolding_equivalence(benchmark, report, once_benchmark):
    def run():
        rows = []
        for depth in (1, 2, 3):
            program = _layered_program(depth)
            assert is_nonrecursive(program)
            start = time.perf_counter()
            ucq = unfold_nonrecursive(program)
            unfold_ms = (time.perf_counter() - start) * 1000
            agree = True
            for seed in range(3):
                db = random_instance({"base": 2}, 5, 7, seed=seed)
                agree &= frozenset(evaluate(program, db)) == evaluate_ucq(ucq, db)
            rows.append(
                [depth, len(program.rules), len(ucq), f"{unfold_ms:.1f}", agree]
            )
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E9",
        "nonrecursive Datalog -> UCQ: unfolding size and equivalence",
        ["IDB depth", "rules", "UCQ disjuncts", "unfold ms", "semantics agree"],
        rows,
        note="disjuncts grow as branch^(2^depth - 1)-shaped products: the "
        "paper's 'possible blow-up in size'",
    )
    assert all(row[4] for row in rows)
    sizes = [row[2] for row in rows]
    assert sizes == sorted(sizes) and sizes[-1] > sizes[0]


def test_e09_monadic_boundary(benchmark, report, once_benchmark):
    corpus = {
        "reachability (paper §2.3)": reachability_program(),
        "transitive closure E+": transitive_closure_program(),
        "nonrecursive 2-hop": parse_program("p(x,z) :- e(x,y), e(y,z)."),
        "monadic same-layer": parse_program(
            """
            odd(x) :- start(x).
            odd(y) :- even(x), e(x, y).
            even(y) :- odd(x), e(x, y).
            """,
            goal="even",
        ),
    }

    def run():
        return [
            [
                name,
                is_nonrecursive(program),
                is_monadic(program),
            ]
            for name, program in corpus.items()
        ]

    rows = once_benchmark(benchmark, run)
    report(
        "E9",
        "the Monadic Datalog boundary (decidable but weak, §2.3)",
        ["program", "nonrecursive", "monadic"],
        rows,
        note="E+ is the paper's witness that Monadic Datalog is too weak "
        "for connectivity",
    )
    table = {row[0]: row for row in rows}
    assert table["reachability (paper §2.3)"][2] is True
    assert table["transitive closure E+"][2] is False
