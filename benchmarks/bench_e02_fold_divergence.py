"""E2 — Section 3.2 / Lemma 2: query vs language containment diverge.

Rows reported: for the paper's pair and a generated family, whether
query containment holds, whether language containment holds, and the
fold witness.  The paper's claim: the first can hold while the second
fails — and whenever language containment holds, so does query
containment (folding subsumes the identity fold).
"""

import random

from repro.automata.alphabet import Alphabet
from repro.automata.dfa import nfa_contains
from repro.automata.regex import parse_regex, random_regex
from repro.rpq.containment import two_rpq_contained
from repro.rpq.rpq import TwoRPQ

HAND_PICKED = [
    ("p", "p p- p"),          # the paper's example
    ("p p", "p p p- p"),
    ("a b-", "a b- b b-"),
    ("a", "a a- a a- a"),
    ("a b", "a b"),
]


def test_e02_divergence_table(benchmark, report, once_benchmark):
    def run():
        rows = []
        diverging = 0
        for left, right in HAND_PICKED:
            q1, q2 = TwoRPQ.parse(left), TwoRPQ.parse(right)
            sigma_pm = Alphabet(
                tuple(sorted(q1.base_symbols() | q2.base_symbols()))
            ).two_way
            query = two_rpq_contained(q1, q2).holds
            language = nfa_contains(q1.nfa, q2.nfa, sigma_pm)
            diverging += query and not language
            rows.append([left, right, query, language, "YES" if query and not language else ""])
        return rows, diverging

    rows, diverging = once_benchmark(benchmark, run)
    report(
        "E2",
        "query containment vs language containment (2RPQs)",
        ["Q1", "Q2", "Q1 ⊑ Q2", "L1 ⊆ L2", "diverges"],
        rows,
        note="the paper's p ⊑ p·p-·p pair must diverge",
    )
    assert diverging >= 3


def test_e02_language_containment_implies_query_containment(
    benchmark, report, once_benchmark
):
    rng = random.Random(23)

    def run():
        implications = violations = 0
        for _ in range(60):
            q1 = TwoRPQ(random_regex(rng, ("a", "b"), 2, allow_inverse=True))
            q2 = TwoRPQ(random_regex(rng, ("a", "b"), 2, allow_inverse=True))
            sigma_pm = Alphabet(("a", "b")).two_way
            if nfa_contains(q1.nfa, q2.nfa, sigma_pm):
                implications += 1
                if not two_rpq_contained(q1, q2).holds:
                    violations += 1
        return implications, violations

    implications, violations = once_benchmark(benchmark, run)
    report(
        "E2",
        "L1 ⊆ L2 ⟹ Q1 ⊑ Q2 over random 2RPQ pairs",
        ["language containments", "query-containment violations"],
        [[implications, violations]],
        note="violations must be 0 (one direction of Lemma 2)",
    )
    assert violations == 0
