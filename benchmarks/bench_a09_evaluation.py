"""A9 — compiled graph snapshots: set-at-a-time evaluation vs the
pre-snapshot path.

The measurements behind DESIGN.md's "Evaluation architecture" section:

1. **Repeated-query workload**: the same 2RPQs evaluated again and again
   over an unchanged database — the shape produced by dashboards, view
   materialization (``rpq/views.py``), and the containment expansion
   loop.  The snapshot arm compiles the graph once per revision and
   serves repeats from the ``(query, fingerprint)`` evaluation cache;
   the *pre-snapshot* arm clears the evaluation caches between calls,
   reproducing the old cost structure (re-intern nodes, rebuild the
   per-symbol adjacency, re-run the BFS per call).  The regex→NFA cache
   stays warm on both arms: the comparison isolates the evaluation
   engine, not regex compilation.
2. **Multi-atom CRPQ membership workload**: ``satisfies_c2rpq`` is the
   documented hot loop of expansion-based containment — many heads
   probed against one small database.  With the per-snapshot
   instantiate cache, atoms materialize once; the pre-snapshot arm
   re-materializes every atom relation per membership test.

Both workloads hard-assert answer agreement between the arms before
reporting any timing, and both gate on the ISSUE 7 acceptance target:
>= 5x on repeated-query and multi-atom workloads.
"""

import time

import random

from repro.automata.indexed import use_indexed_kernels
from repro.automata.regex import random_regex
from repro.cache import (
    clear_caches,
    eval_context_cache,
    evaluation_cache,
    instantiate_cache,
)
from repro.crpq.evaluation import satisfies_c2rpq
from repro.crpq.syntax import C2RPQ
from repro.graphdb.generators import random_graph
from repro.rpq.rpq import TwoRPQ

ALPHABET = ("a", "b")


def _clear_evaluation_caches() -> None:
    """Forget only the evaluation-side artifacts (the pre-snapshot arm:
    regex compilation stays cached, graph compilation does not)."""
    eval_context_cache.clear()
    evaluation_cache.clear()
    instantiate_cache.clear()


def _best_of(repeats: int, fn) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_a9_repeated_query_workload(benchmark, report, once_benchmark):
    """Repeated 2RPQ evaluation: snapshot cache vs per-call recompilation."""
    rng = random.Random(41)
    queries = [
        TwoRPQ(random_regex(rng, ALPHABET, 3, allow_inverse=True))
        for _ in range(10)
    ]
    db = random_graph(40, 160, ALPHABET, seed=43)
    rounds = 10

    def run():
        with use_indexed_kernels(True):
            # Warm the regex->NFA cache on both arms and hard-gate
            # answer agreement against the object-state baseline.
            clear_caches()
            snapshot_answers = [query.evaluate(db) for query in queries]
            with use_indexed_kernels(False):
                baseline_answers = [query.evaluate(db) for query in queries]
            assert snapshot_answers == baseline_answers

            def arm_snapshot() -> None:
                _clear_evaluation_caches()
                for _ in range(rounds):
                    for query in queries:
                        query.evaluate(db)

            def arm_presnapshot() -> None:
                for _ in range(rounds):
                    for query in queries:
                        _clear_evaluation_caches()
                        query.evaluate(db)

            snapshot_s = _best_of(3, arm_snapshot)
            presnapshot_s = _best_of(3, arm_presnapshot)
        speedup = presnapshot_s / snapshot_s
        calls = rounds * len(queries)
        rows = [
            [
                calls,
                f"{presnapshot_s * 1000:.2f}",
                f"{snapshot_s * 1000:.2f}",
                f"{speedup:.1f}x",
            ]
        ]
        return rows, speedup

    rows, speedup = once_benchmark(benchmark, run)
    report(
        "A9",
        "repeated-query workload: 10 2RPQs x 10 rounds on a 40-node graph "
        "(best of 3)",
        ["evaluate() calls", "pre-snapshot ms", "snapshot ms", "speedup"],
        rows,
        note="pre-snapshot arm clears evaluation caches per call (old cost "
        "structure); regex->NFA cache warm on both arms; answers hard-gated "
        "against the object-state baseline",
    )
    assert speedup >= 5.0  # ISSUE 7 acceptance target


def test_a9_multi_atom_crpq_workload(benchmark, report, once_benchmark):
    """CRPQ membership hot loop: per-snapshot instantiation vs per-test."""
    # Four distinct regular atoms anchored on the head variables (plus
    # one existential hop), so per-test cost is dominated by atom
    # instantiation — the cost the snapshot cache amortizes — rather
    # than by the conjunctive join.
    query = C2RPQ.from_strings(
        "x,y",
        [
            ("(a|b)* a (a|b)*", "x", "y"),
            ("a (b a-)+", "x", "y"),
            ("b- (a|b)+ a", "x", "z"),
            ("(a b)+ b-", "z", "y"),
        ],
    )
    db = random_graph(30, 100, ALPHABET, seed=47)
    heads = [(x, y) for x in db.nodes_in_order()[:6] for y in db.nodes_in_order()[:6]]

    def run():
        with use_indexed_kernels(True):
            clear_caches()
            cached = [satisfies_c2rpq(query, db, head) for head in heads]
            with use_indexed_kernels(False):
                baseline = [satisfies_c2rpq(query, db, head) for head in heads]
            assert cached == baseline  # verdict agreement hard gate

            def arm_snapshot() -> None:
                _clear_evaluation_caches()
                for head in heads:
                    satisfies_c2rpq(query, db, head)

            def arm_presnapshot() -> None:
                for head in heads:
                    _clear_evaluation_caches()
                    satisfies_c2rpq(query, db, head)

            snapshot_s = _best_of(3, arm_snapshot)
            presnapshot_s = _best_of(3, arm_presnapshot)
        speedup = presnapshot_s / snapshot_s
        rows = [
            [
                len(heads),
                f"{presnapshot_s * 1000:.2f}",
                f"{snapshot_s * 1000:.2f}",
                f"{speedup:.1f}x",
            ]
        ]
        return rows, speedup

    rows, speedup = once_benchmark(benchmark, run)
    report(
        "A9",
        "multi-atom CRPQ membership: 4 distinct regular atoms, "
        "36 heads on a 30-node graph (best of 3)",
        ["membership tests", "per-test instantiate ms", "per-snapshot ms", "speedup"],
        rows,
        note="satisfies_c2rpq is the hot loop of expansion-based containment; "
        "atoms materialize once per snapshot on the cached arm, once per "
        "membership test on the pre-snapshot arm",
    )
    assert speedup >= 5.0  # ISSUE 7 acceptance target
