"""E11 — Sections 3.3-3.4: the expressiveness separations, empirically.

Rows reported:
- conjunction vs intersection over graphs (§3.3): a distinguishing
  database where the conjunction answers and the intersection does not,
  found automatically by the containment engine;
- UC2RPQ non-closure under TC (§3.4): triangle+ separated from each
  bounded unrolling, with the counterexample sizes (chains of k+1
  triangles);
- the relational mirror: E+ vs every bounded-length path UCQ.
"""

from repro.cq.syntax import UCQ, Var, cq_from_strings
from repro.crpq.containment import uc2rpq_contained
from repro.crpq.syntax import C2RPQ
from repro.datalog.containment import datalog_in_ucq
from repro.datalog.syntax import transitive_closure_program
from repro.rq.containment import rq_contained
from repro.rq.syntax import And, Project, rename, triangle_plus, triangle_query


def test_e11_conjunction_vs_intersection(benchmark, report, once_benchmark):
    intersection = C2RPQ.from_strings("x,y", [("a b", "x", "y")])
    conjunction = C2RPQ.from_strings(
        "x,y", [("a (b|c)", "x", "y"), ("(a|d) b", "x", "y")]
    )

    def run():
        forward = uc2rpq_contained(intersection, conjunction)
        backward = uc2rpq_contained(conjunction, intersection)
        witness = backward.counterexample
        return [
            ["Q1∩Q2 ⊑ Q1∧Q2", forward.verdict.value, ""],
            [
                "Q1∧Q2 ⊑ Q1∩Q2",
                backward.verdict.value,
                f"{witness.database.num_edges}-edge witness",
            ],
        ]

    rows = once_benchmark(benchmark, run)
    report(
        "E11",
        "conjunction vs intersection over graphs (§3.3)",
        ["claim", "verdict", "witness"],
        rows,
        note="over words the two coincide; over graphs only one direction holds",
    )
    assert rows[0][1] == "holds" and rows[1][1] == "refuted"


def _unrolled_triangle(k: int):
    """triangle ∨ triangle² ∨ ... ∨ triangle^k as a TC-free RQ."""
    composed = triangle_query()
    union = triangle_query()
    for i in range(1, k):
        step = rename(triangle_query(), {"x": f"m{i}", "y": "y", "z": f"t{i}"})
        left = rename(composed, {"y": f"m{i}"})
        composed = Project(And(left, step), triangle_query().head_vars)
        union = union | composed
    return union


def test_e11_uc2rpq_not_closed_under_tc(benchmark, report, once_benchmark):
    def run():
        rows = []
        for k in (1, 2, 3):
            approx = _unrolled_triangle(k)
            under = rq_contained(approx, triangle_plus(), max_expansions=200)
            over = rq_contained(
                triangle_plus(),
                approx,
                max_applications=10 * (k + 1),
                max_expansions=400,
            )
            witness_size = (
                over.counterexample.database.num_edges
                if over.counterexample
                else "-"
            )
            rows.append([k, under.verdict.value, over.verdict.value, witness_size])
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E11",
        "triangle+ vs its k-fold unrollings (§3.4)",
        ["k", "unrolling ⊑ triangle+", "triangle+ ⊑ unrolling", "witness edges"],
        rows,
        note="every bounded approximation is strictly weaker: a chain of "
        "k+1 triangles separates (3(k+1) edges)",
    )
    for index, row in enumerate(rows):
        assert row[1] == "holds" and row[2] == "refuted"
        assert row[3] == 3 * (index + 2)


def test_e11_relational_mirror(benchmark, report, once_benchmark):
    """E+ is not any finite union of bounded path CQs."""
    tc = transitive_closure_program("e", "tc")

    def path_cq(length: int):
        atoms = [f"e(v{i}, v{i+1})" for i in range(length)]
        return cq_from_strings(f"v0,v{length}", atoms)

    def run():
        rows = []
        for bound in (1, 2, 3, 4):
            union = UCQ(tuple(path_cq(length) for length in range(1, bound + 1)))
            result = datalog_in_ucq(tc, union, max_expansions=30)
            witness = (
                result.counterexample.database.num_facts
                if result.counterexample
                else "-"
            )
            rows.append([bound, result.verdict.value, witness])
        return rows

    rows = once_benchmark(benchmark, run)
    report(
        "E11",
        "E+ vs unions of paths up to length k (relational mirror)",
        ["k", "E+ ⊑ paths≤k", "witness facts"],
        rows,
        note="always refuted by the (k+1)-chain: recursion is essential "
        "(the paper's case for GRQ over UCQ)",
    )
    for index, row in enumerate(rows):
        assert row[1] == "refuted"
        assert row[2] == index + 2
