"""Explaining answers and refutations: witnesses everywhere.

A production query engine owes its users *why*:

- why is this pair in the answer?  -> a concrete semipath
  (``TwoRPQ.witness_semipath``);
- why are these queries not equivalent?  -> a minimal counterexample
  database (containment + ``shrink_counterexample``);
- what does this query even mean?  -> its translation into Datalog
  rules (``rq_to_datalog``) and back (``grq_to_rq``).

Run:  python examples/explanations.py
"""

from repro.core import check_containment, shrink_counterexample
from repro.graphdb import GraphDatabase, io as graph_io
from repro.grq import grq_to_rq
from repro.rpq import TwoRPQ
from repro.rq import parse_rq, rq_to_datalog, simplify


def main() -> None:
    db = GraphDatabase.from_edges(
        [
            ("ann", "reports", "bea"),
            ("bea", "reports", "cy"),
            ("cy", "reports", "dee"),
            ("eve", "reports", "bea"),
        ]
    )

    # -- why is this pair an answer? --------------------------------------------
    chain = TwoRPQ.parse("reports+")
    print("answers of reports+ from ann:", sorted(chain.targets(db, "ann")))
    path = chain.witness_semipath(db, "ann", "dee")
    print("why ann ->* dee:", " ".join(str(step) for step in path))

    # Two-way: nearest common boss via reports+ reports-+ would allow any
    # meeting point; a concrete witness shows which one was used.
    common = TwoRPQ.parse("reports+ reports-+")
    path = common.witness_semipath(db, "ann", "eve")
    print("why ann ~ eve share management:", " ".join(str(step) for step in path))

    # -- why are two queries inequivalent? ---------------------------------------
    boss = TwoRPQ.parse("reports reports")
    anyboss = TwoRPQ.parse("reports+")
    result = check_containment(anyboss, boss)
    print("\nreports+ ⊑ reports² ?", result.describe())
    witness = shrink_counterexample(anyboss, boss, result)
    print("minimal separating database:")
    print(graph_io.to_edge_list(witness.database), end="")
    print("separating pair:", witness.output)

    # -- what does a query mean, in rules? ---------------------------------------
    rq = parse_rq(
        """
        peer(x, y) :- [reports](x, m), [reports](y, m).
        circle(x, y) :- peer+(x, y).
        """
    )
    rq = simplify(rq)
    program = rq_to_datalog(rq)
    print("\nthe 'management circle' query as Datalog (Section 4.1):")
    for rule in program.rules:
        print(" ", rule)

    # ... and back through the Theorem 8 reduction, closing the loop:
    back = grq_to_rq(program)
    from repro.rq import evaluate_rq

    assert evaluate_rq(back, db) == evaluate_rq(rq, db)
    print("\nround-trip RQ -> Datalog -> RQ preserves the answers:",
          sorted(evaluate_rq(rq, db)))


if __name__ == "__main__":
    main()
