"""Containment as a query optimizer (the paper's Section 4.2 theme).

The paper closes by asking whether containment can matter in practice.
This example builds the three classic optimizer moves that reduce to
containment and runs them on concrete queries:

1. **CQ minimization** — drop redundant joins (cores).
2. **Redundant-disjunct elimination** — shrink a UCQ whose disjuncts
   subsume each other.
3. **Cached-view answering** — answer a query from a materialized view
   when equivalence is certified.

Run:  python examples/query_optimizer.py
"""

import time

from repro.core import check_containment, check_equivalence
from repro.cq import (
    UCQ,
    cq_from_strings,
    evaluate_cq,
    evaluate_ucq,
    minimize_cq,
)
from repro.relational import random_instance
from repro.rpq import RPQ


def timed(label, fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    print(f"  {label}: {(time.perf_counter() - start) * 1000:.1f} ms")
    return out


def main() -> None:
    # -- 1. join elimination via cores ------------------------------------------
    print("1. CQ minimization")
    bloated = cq_from_strings(
        "x,z",
        [
            "E(x,y)", "E(y,z)",      # the real pattern: a 2-path
            "E(x,y2)",               # redundant: subsumed by E(x,y)
            "E(y3,z)",               # redundant: subsumed by E(y,z)
            "E(x,y4)", "E(y4,z2)",   # redundant: a 2-path again
        ],
    )
    core = minimize_cq(bloated)
    print(f"  atoms: {len(bloated.body)} -> {len(core.body)}")

    db = random_instance({"E": 2}, 40, 300, seed=7)
    slow = timed("bloated query", evaluate_cq, bloated, db)
    fast = timed("core query   ", evaluate_cq, core, db)
    assert slow == fast
    print(f"  same {len(fast)} answers\n")

    # -- 2. redundant disjunct elimination --------------------------------------
    print("2. UCQ disjunct pruning")
    union = UCQ(
        (
            cq_from_strings("x,y", ["E(x,y)"]),
            cq_from_strings("x,y", ["E(x,y)", "E(x,w)"]),   # ⊑ first
            cq_from_strings("x,z", ["E(x,y)", "E(y,z)"]),
        )
    )
    from repro.cq import minimize_ucq

    pruned = minimize_ucq(union)
    for disjunct in union:
        if disjunct not in pruned.disjuncts:
            print(f"  redundant: {disjunct}")
    assert evaluate_ucq(union, db) == evaluate_ucq(pruned, db)
    print(f"  disjuncts: {len(union)} -> {len(pruned)}\n")

    # -- 3. answering from a cached view ----------------------------------------
    print("3. cached-view answering (RPQ)")
    from repro.graphdb import social_network

    graph = social_network(120, seed=11)
    view_query = RPQ.parse("knows knows*")       # the materialized view
    user_query = RPQ.parse("knows+")             # an incoming query

    if check_equivalence(user_query, view_query):
        print("  equivalence certified: serving knows+ from the knows·knows* view")
        view = view_query.evaluate(graph)        # "materialized" once
        answers = view                            # served from cache
    else:  # pragma: no cover - not taken
        answers = user_query.evaluate(graph)
    assert answers == user_query.evaluate(graph)
    print(f"  {len(answers)} pairs served\n")

    # A near-miss the checker correctly rejects, with evidence:
    near_miss = RPQ.parse("knows knows+")
    verdict = check_containment(user_query, near_miss)
    print("  knows+ ⊑ knows·knows+ ?", verdict.describe())


if __name__ == "__main__":
    main()
