"""Quickstart: the query tower and the containment engine in five minutes.

Walks the paper's storyline end to end:

1. build a graph database and run RPQ / 2RPQ / UC2RPQ / RQ queries,
2. reproduce the paper's ``p ⊑ p p- p`` surprise,
3. check containment across classes with one entry point, and
4. replay a counterexample database.

Run:  python examples/quickstart.py
"""

from repro.core import check_containment, classify, describe_tower, verify_counterexample
from repro.crpq import C2RPQ
from repro.graphdb import GraphDatabase
from repro.rpq import RPQ, TwoRPQ, paper_divergence_example
from repro.rq import TransitiveClosure, edge


def main() -> None:
    # -- 1. a tiny social graph -------------------------------------------------
    db = GraphDatabase.from_edges(
        [
            ("ann", "knows", "bob"),
            ("bob", "knows", "cal"),
            ("cal", "knows", "dee"),
            ("ann", "worksAt", "acme"),
            ("cal", "worksAt", "acme"),
        ]
    )
    print("database:", db)

    friends_of_friends = RPQ.parse("knows knows")
    print("knows·knows      ->", sorted(friends_of_friends.evaluate(db)))

    reachable = RPQ.parse("knows+")
    print("knows+           ->", sorted(reachable.evaluate(db)))

    colleagues = TwoRPQ.parse("worksAt worksAt-")   # two-way: inverse letter
    print("colleagues       ->", sorted(colleagues.evaluate(db)))

    # A conjunctive 2RPQ: colleagues who are also connected by knows+.
    close = C2RPQ.from_strings(
        "x,y", [("worksAt worksAt-", "x", "y"), ("knows+", "x", "y")]
    )
    from repro.crpq import evaluate_c2rpq

    print("close colleagues ->", sorted(evaluate_c2rpq(close, db)))

    # A regular query (RQ): transitive closure *of a conjunction* - the
    # operation UC2RPQ cannot express (Section 3.4 of the paper).
    hop = edge("knows", "x", "y")
    rq = TransitiveClosure(hop)
    from repro.rq import evaluate_rq

    print("RQ knows+        ->", sorted(evaluate_rq(rq, db)))

    # -- 2. the paper's divergence example -------------------------------------
    example = paper_divergence_example()
    print(
        "\nSection 3.2:  p ⊑ p·p-·p as queries:",
        example.query_containment_holds,
        "| as languages:",
        example.language_containment_holds,
    )

    # -- 3. one containment entry point, any classes ---------------------------
    print("\nclassify:", describe_tower(friends_of_friends), "/", describe_tower(rq))
    result = check_containment(friends_of_friends, rq)
    print("knows·knows ⊑ knows+ ?", result.describe())

    result = check_containment(rq, friends_of_friends)
    print("knows+ ⊑ knows·knows ?", result.describe())

    # -- 4. refutations come with replayable databases --------------------------
    assert result.counterexample is not None
    witness_db = result.counterexample.database
    print(
        "counterexample database edges:",
        sorted(witness_db.edges()),
        "| output:",
        result.counterexample.output,
    )
    print(
        "independently verified:",
        verify_counterexample(rq, friends_of_friends, result),
    )


if __name__ == "__main__":
    main()
