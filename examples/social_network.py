"""Graph-database querying on a synthetic social network.

Exercises the graph side of the paper on a larger generated database:
RPQs for navigation, 2RPQs for inverse traversal (the paper's XPath
predecessor-axis motivation), UC2RPQs for conjunctive patterns, and an
RQ whose transitive closure ranges over a *derived* relation — the
query class the paper introduces.

Run:  python examples/social_network.py
"""

import time

from repro.crpq import C2RPQ, evaluate_c2rpq
from repro.graphdb import social_network
from repro.rpq import RPQ, TwoRPQ
from repro.rq import TransitiveClosure, evaluate_rq, path_query


def main() -> None:
    db = social_network(150, avg_friends=3.0, seed=42)
    print(f"network: {db.num_nodes} nodes, {db.num_edges} edges")
    print(f"schema (from data, not declared): {sorted(db.labels)}")

    # -- RPQ: who can p0 reach along knows-edges? -------------------------------
    start = time.perf_counter()
    reach = RPQ.parse("knows+").targets(db, "p0")
    elapsed = time.perf_counter() - start
    print(f"\np0 reaches {len(reach)} people via knows+ ({elapsed*1000:.1f} ms)")

    # -- 2RPQ: colleagues (forward + inverse traversal) --------------------------
    colleagues = TwoRPQ.parse("worksAt worksAt-")
    pairs = colleagues.evaluate(db)
    proper = {(a, b) for a, b in pairs if a != b}
    print(f"colleague pairs: {len(proper)}")

    # -- 2RPQ: same country, through the location hierarchy ---------------------
    compatriots = TwoRPQ.parse("livesIn partOf+ partOf-+ livesIn-")
    sample = sorted(compatriots.targets(db, "p0"))[:5]
    print(f"p0's compatriots (sample): {sample}")

    # -- UC2RPQ: knows-path colleagues (two constraints, one pattern) -----------
    close = C2RPQ.from_strings(
        "x,y",
        [("knows knows?", "x", "y"), ("worksAt worksAt-", "x", "y")],
    )
    answers = evaluate_c2rpq(close, db)
    print(f"colleagues within two knows-hops: {len(answers)} pairs")

    # -- RQ: transitive closure of a derived relation ---------------------------
    # "influence": x influences y if x knows y and they share an employer.
    # The *closure* of influence is an RQ — not expressible as UC2RPQ
    # (Section 3.4): TC may only appear inside regular atoms there.
    from repro.rq import And, Project, edge
    from repro.cq.syntax import Var

    influence = Project(
        And(
            edge("knows", "x", "y"),
            Project(
                And(edge("worksAt", "x", "o"), edge("worksAt", "y", "o")),
                (Var("x"), Var("y")),
            ),
        ),
        (Var("x"), Var("y")),
    )
    influence_closure = TransitiveClosure(influence)
    start = time.perf_counter()
    closed = evaluate_rq(influence_closure, db)
    elapsed = time.perf_counter() - start
    direct = evaluate_rq(influence, db)
    print(
        f"influence: {len(direct)} direct pairs, "
        f"{len(closed)} after closure ({elapsed*1000:.1f} ms)"
    )

    # -- containment as an optimizer: skip the expensive query when a
    #    cheaper one already answers it ----------------------------------------
    from repro.core import check_containment

    cheap = RPQ.parse("knows")
    rich = RPQ.parse("knows (knows| () )")
    verdict = check_containment(cheap, rich)
    print(
        "\noptimizer fact: knows ⊑ knows·(knows|ε)?",
        verdict.describe(),
    )


if __name__ == "__main__":
    main()
