"""Declarative networking with GRQ: the application the paper motivates.

Section 1 and Section 4 of the paper argue that applications like
declarative networking [37] need recursion for *connectivity* — "there
is a network connection of some unknown length between nodes x and y" —
which Monadic Datalog cannot express, full Datalog makes undecidable,
and GRQ makes decidable.

This example models a small datacenter network, writes routing queries
as GRQ programs, and uses the containment engine as a *policy checker*:
"does every multi-hop route the router computes stay within links the
security policy allows?" is exactly a containment question.

Run:  python examples/declarative_networking.py
"""

from repro.core import check_containment
from repro.datalog import evaluate, parse_program
from repro.grq import check_grq
from repro.relational import Instance


def build_network() -> Instance:
    """Two racks of servers, top-of-rack switches, a spine, one bad link."""
    db = Instance()
    links = [
        # rack 1
        ("s1", "tor1"), ("s2", "tor1"), ("s3", "tor1"),
        # rack 2
        ("s4", "tor2"), ("s5", "tor2"),
        # fabric
        ("tor1", "spine"), ("tor2", "spine"),
        # unapproved gear: a lab box wired straight into s3
        ("lab0", "s3"),
    ]
    for a, b in links:
        db.add("link", (a, b))
        db.add("link", (b, a))  # links are bidirectional
        if "lab0" not in (a, b):
            db.add("approved", (a, b))
            db.add("approved", (b, a))
    return db


ROUTER = """
    % connectivity over all physical links (Section 2.3's E+ pattern)
    route(x, y) :- link(x, y).
    route(x, z) :- route(x, y), link(y, z).
"""

POLICY = """
    % connectivity restricted to approved links
    safe(x, y) :- approved(x, y).
    safe(x, z) :- safe(x, y), approved(y, z).
"""


def main() -> None:
    network = build_network()
    router = parse_program(ROUTER, goal="route")
    policy = parse_program(POLICY, goal="safe")

    # Both programs are GRQ: recursion is exactly transitive closure.
    for name, program in (("router", router), ("policy", policy)):
        report = check_grq(program)
        print(f"{name}: GRQ? {report.is_grq}")

    routes = evaluate(router, network)
    print(f"\nrouter computes {len(routes)} reachable pairs")
    print("s1 can reach s5:", ("s1", "s5") in routes)

    # Static policy check = query containment (no network data needed!).
    verdict = check_containment(router, policy, max_expansions=40)
    print("\nevery route is policy-safe?", verdict.describe())

    # The engine refuses to certify: physical connectivity uses links the
    # policy does not approve.  The counterexample is a synthetic network
    # exhibiting the violation pattern.
    if verdict.counterexample is not None:
        cex = verdict.counterexample
        print("counterexample network:", sorted(cex.database.facts()))
        print("violating route:", cex.output)

    # Fix the router to only use approved links, then re-check.
    fixed = parse_program(
        """
        route(x, y) :- approved(x, y).
        route(x, z) :- route(x, y), approved(y, z).
        """,
        goal="route",
    )
    verdict = check_containment(fixed, policy, max_expansions=40)
    print("\nfixed router is policy-safe?", verdict.describe())

    # And the fixed router still reaches everything reachable safely:
    verdict = check_containment(policy, fixed, max_expansions=40)
    print("policy-reachability ⊑ fixed router?", verdict.describe())

    # On the concrete network, the difference is visible too.
    fixed_routes = evaluate(fixed, network)
    dropped = routes - fixed_routes
    print(f"\nroutes dropped by the fix: {len(dropped)}")
    print("lab0 routes removed:", any("lab0" in pair for pair in dropped))


if __name__ == "__main__":
    main()
