"""Data integration: answering queries using views (paper §1, refs [12, 33, 36]).

A mediator exposes a *global* schema over sources it cannot query
directly; each source publishes a materialized *view* defined as an RPQ
over the global schema.  Answering a user query then means rewriting it
in terms of the views — the maximally contained rewriting — and running
the rewriting over the views' extensions.  Query containment does all
the heavy lifting, exactly as the paper's introduction promises.

Run:  python examples/data_integration.py
"""

from repro.graphdb import GraphDatabase
from repro.rpq import RPQ, answer_using_views, rewrite, view_graph


def main() -> None:
    # Global schema: flight, train, bus edges between cities.
    # The "real world" — which the mediator never sees directly:
    world = GraphDatabase.from_edges(
        [
            ("lisbon", "flight", "paris"),
            ("paris", "train", "brussels"),
            ("brussels", "train", "amsterdam"),
            ("paris", "flight", "warsaw"),
            ("warsaw", "bus", "vilnius"),
            ("amsterdam", "flight", "vilnius"),
        ]
    )

    # Sources publish views over the global schema:
    views = {
        "rail": RPQ.parse("train+"),          # a rail aggregator
        "air": RPQ.parse("flight"),           # an airline's direct flights
        "airrail": RPQ.parse("flight train*"),  # a trip-planner feed
    }

    # The user asks: cities connected by one flight then any rail travel.
    query = RPQ.parse("flight train*")
    print("user query:", query)

    rewriting = rewrite(query, views)
    print("maximally contained rewriting over the sources:", rewriting.to_regex())
    print("rewriting is exact:", rewriting.is_exact())

    materialized = view_graph(views, world)
    answers = answer_using_views(rewriting, materialized)
    direct = query.evaluate(world)
    print(f"\ncertain answers via views: {len(answers)}")
    for pair in sorted(answers):
        print("  ", pair)
    print("answers match direct evaluation:", answers == direct)

    # A query the sources cannot fully serve: bus legs are unpublished.
    partial = RPQ.parse("flight (train|bus)*")
    rewriting = rewrite(partial, views)
    print(f"\nquery with bus legs: {partial}")
    print("rewriting:", rewriting.to_regex())
    served = answer_using_views(rewriting, materialized)
    missing = partial.evaluate(world) - served
    print(f"served {len(served)} pairs; unreachable through views: {sorted(missing)}")
    # Soundness: nothing wrong is ever returned.
    assert served <= partial.evaluate(world)


if __name__ == "__main__":
    main()
